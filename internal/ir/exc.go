package ir

// Exception expansion: Grapple models exceptional control flow as ordinary
// branching on opaque "did it throw" conditions so that the CFET (paper §3)
// needs only one structured construct. This mirrors the paper's treatment of
// Fig. 8a: "sockConnect ... may or may not throw an IOException".
//
// The pass removes TryRegion/Raise and produces a pure If-structured body:
//   - "raise v" with a matching enclosing handler inlines the handler at the
//     raise point (with the handler's continuation — the code following the
//     try region);
//   - "raise v" with no matching handler becomes $exc = v; ThrowExit and the
//     enclosing function is marked MayThrow;
//   - a call to a MayThrow callee splits into If(opaque-throw-cond): the
//     exceptional branch either enters the innermost handler (binding the
//     callee's $exc to the catch variable via CatchBind{FromCall}) or
//     propagates ($exc-to-$exc CatchBind + ThrowExit).
//
// Because the expansion inlines remainders into branches (tail duplication),
// exceptional paths are explicit in the CFET exactly like ordinary paths.

// handlerChain is the stack of lexically enclosing catch handlers; each
// handler records its continuation — what executes after its try region.
type handlerChain struct {
	catchVar  string
	catchType string // "" catches every type
	catch     []Stmt
	cont      *cont
	outer     *handlerChain
}

// cont is a continuation: the statements (and handler scope) that run after
// the current list is exhausted.
type cont struct {
	stmts    []Stmt
	handlers *handlerChain
	next     *cont
}

// expandExceptions rewrites every function. It first computes the MayThrow
// fixpoint over the raw bodies, then expands each body.
func expandExceptions(p *Program) {
	// Local throws.
	for _, fn := range p.Funs {
		fn.ThrowsLocally = blockRaisesLocally(fn.Body, nil)
		fn.MayThrow = fn.ThrowsLocally
	}
	// Transitive closure: calling a MayThrow callee outside any try
	// propagates (handlers in MiniLang catch the statically-unknown callee
	// exception conservatively, so a call inside any try is contained).
	for changed := true; changed; {
		changed = false
		for _, fn := range p.Funs {
			if fn.MayThrow {
				continue
			}
			if blockCallsThrowerOutsideTry(fn.Body, p, false) {
				fn.MayThrow = true
				changed = true
			}
		}
	}
	ex := &expander{prog: p}
	for _, fn := range p.Funs {
		out := &Block{}
		ex.expand(fn.Body.Stmts, nil, nil, out)
		fn.Body = out
	}
}

// blockRaisesLocally reports whether b contains a raise not caught by a
// matching enclosing handler within this function.
func blockRaisesLocally(b *Block, types []string) bool {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *Raise:
			if !anyHandlerMatches(types, s.Type) {
				return true
			}
		case *If:
			if blockRaisesLocally(s.Then, types) || blockRaisesLocally(s.Else, types) {
				return true
			}
		case *TryRegion:
			if blockRaisesLocally(s.Body, append(types, s.CatchType)) {
				return true
			}
			if blockRaisesLocally(s.Catch, types) {
				return true
			}
		}
	}
	return false
}

func anyHandlerMatches(types []string, thrown string) bool {
	for _, t := range types {
		if t == "" || t == thrown {
			return true
		}
	}
	return false
}

func blockCallsThrowerOutsideTry(b *Block, p *Program, inTry bool) bool {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *Call:
			if !inTry {
				if callee := p.FunByName[s.Callee]; callee != nil && callee.MayThrow {
					return true
				}
			}
		case *If:
			if blockCallsThrowerOutsideTry(s.Then, p, inTry) ||
				blockCallsThrowerOutsideTry(s.Else, p, inTry) {
				return true
			}
		case *TryRegion:
			if blockCallsThrowerOutsideTry(s.Body, p, true) {
				return true
			}
			if blockCallsThrowerOutsideTry(s.Catch, p, inTry) {
				return true
			}
		}
	}
	return false
}

type expander struct {
	prog    *Program
	opaqueN int32
}

func (ex *expander) freshOpaque() int32 {
	// Opaque IDs from lowering and expansion share a space; offset far above
	// lowering's counter (which restarts per program anyway).
	ex.opaqueN++
	return 1<<24 + ex.opaqueN
}

// expand processes stmts under handler scope h with continuation k,
// appending pure IR to out.
func (ex *expander) expand(stmts []Stmt, h *handlerChain, k *cont, out *Block) {
	for {
		if len(stmts) == 0 {
			if k == nil {
				return
			}
			stmts, h, k = k.stmts, k.handlers, k.next
			continue
		}
		s := stmts[0]
		rest := stmts[1:]
		switch s := s.(type) {
		case *Raise:
			// The raise is a "throw" FSM event on the exception object.
			out.Stmts = append(out.Stmts, &Event{Recv: s.Src, Method: "throw", Pos: s.Pos})
			hc := matchHandler(h, s.Type)
			if hc == nil {
				out.Stmts = append(out.Stmts,
					&ObjAssign{Dst: ExcVar, Src: s.Src, Pos: s.Pos},
					&ThrowExit{Pos: s.Pos})
				return
			}
			out.Stmts = append(out.Stmts,
				&ObjAssign{Dst: hc.catchVar, Src: s.Src, Pos: s.Pos},
				&CatchBind{Var: hc.catchVar, Type: s.Type, FromCall: -1, Pos: s.Pos})
			ex.expand(hc.catch, hc.outer, hc.cont, out)
			return

		case *TryRegion:
			after := &cont{stmts: rest, handlers: h, next: k}
			hc := &handlerChain{
				catchVar:  s.CatchVar,
				catchType: s.CatchType,
				catch:     s.Catch.Stmts,
				cont:      after,
				outer:     h,
			}
			stmts, h, k = s.Body.Stmts, hc, after
			continue

		case *Call:
			out.Stmts = append(out.Stmts, s)
			callee := ex.prog.FunByName[s.Callee]
			if callee == nil || !callee.MayThrow {
				stmts = rest
				continue
			}
			branch := &If{Cond: OpaqueCond(ex.freshOpaque()), Then: &Block{}, Else: &Block{}, Pos: s.Pos}
			// Exceptional branch: callee's $exc arrives here.
			if hc := matchHandler(h, ""); hc != nil {
				branch.Then.Stmts = append(branch.Then.Stmts,
					&CatchBind{Var: hc.catchVar, Type: hc.catchType, FromCall: s.Site, Pos: s.Pos})
				ex.expand(hc.catch, hc.outer, hc.cont, branch.Then)
			} else {
				branch.Then.Stmts = append(branch.Then.Stmts,
					&CatchBind{Var: ExcVar, Type: "", FromCall: s.Site, Pos: s.Pos},
					&ThrowExit{Pos: s.Pos})
			}
			ex.expand(rest, h, k, branch.Else)
			out.Stmts = append(out.Stmts, branch)
			return

		case *If:
			if blockCanRaise(s.Then, ex.prog) || blockCanRaise(s.Else, ex.prog) {
				// Tail-duplicate the remainder into both branches so a raise
				// in one branch cannot fall through into post-if code.
				branch := &If{Cond: s.Cond, Then: &Block{}, Else: &Block{}, Pos: s.Pos}
				ex.expand(s.Then.Stmts, h, &cont{stmts: rest, handlers: h, next: k}, branch.Then)
				ex.expand(s.Else.Stmts, h, &cont{stmts: rest, handlers: h, next: k}, branch.Else)
				out.Stmts = append(out.Stmts, branch)
				return
			}
			branch := &If{Cond: s.Cond, Then: &Block{}, Else: &Block{}, Pos: s.Pos}
			ex.expand(s.Then.Stmts, h, nil, branch.Then)
			ex.expand(s.Else.Stmts, h, nil, branch.Else)
			out.Stmts = append(out.Stmts, branch)
			stmts = rest
			continue

		case *Return:
			out.Stmts = append(out.Stmts, s)
			return
		case *ThrowExit:
			out.Stmts = append(out.Stmts, s)
			return

		default:
			out.Stmts = append(out.Stmts, s)
			stmts = rest
			continue
		}
	}
}

// matchHandler finds the innermost handler accepting thrownType ("" thrown
// type means statically unknown, which any handler accepts conservatively).
func matchHandler(h *handlerChain, thrownType string) *handlerChain {
	for ; h != nil; h = h.outer {
		if h.catchType == "" || thrownType == "" || h.catchType == thrownType {
			return h
		}
	}
	return nil
}

// blockCanRaise reports whether expanding b could divert control flow out of
// the ordinary fall-through (raise, throwing call, or a try region around
// either).
func blockCanRaise(b *Block, p *Program) bool {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *Raise, *TryRegion:
			return true
		case *Call:
			if callee := p.FunByName[s.Callee]; callee != nil && callee.MayThrow {
				return true
			}
		case *If:
			if blockCanRaise(s.Then, p) || blockCanRaise(s.Else, p) {
				return true
			}
		}
	}
	return false
}
