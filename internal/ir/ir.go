// Package ir defines Grapple's structured intermediate representation and
// the lowering from MiniLang ASTs into it.
//
// Lowering performs the normalizations the CFET builder (paper §3) relies
// on: short-circuit boolean operators become nested branches, loops are
// statically unrolled into cycle-free nests of conditionals (§3.1 "we bound
// the number of loop iterations"), nested integer expressions are flattened
// into three-address temporaries, and exceptional control flow is expanded
// into explicit branches on opaque "did it throw" conditions (mirroring the
// paper's reasoning about Fig. 8a, where sockConnect "may or may not throw").
package ir

import (
	"fmt"

	"github.com/grapple-system/grapple/internal/lang"
)

// Program is a lowered MiniLang program.
type Program struct {
	Funs      []*Func
	FunByName map[string]*Func
	// ObjectTypes is the set of object type names in the program.
	ObjectTypes map[string]bool
	// NumAllocSites and NumCallSites size ID spaces.
	NumAllocSites int
	NumCallSites  int
	// AllocSitePos and AllocSiteType index allocation sites.
	AllocSitePos  []lang.Pos
	AllocSiteType []string
	// CallSitePos indexes call sites.
	CallSitePos []lang.Pos
}

// Func is a lowered function.
type Func struct {
	Name    string
	Params  []lang.Param
	RetType string
	Body    *Block
	// MayThrow is true when the function can exit exceptionally (computed
	// transitively by ExpandExceptions).
	MayThrow bool
	// ThrowsLocally is true when the body contains a throw outside any try.
	ThrowsLocally bool
	Pos           lang.Pos
}

// ExcVar is the implicit per-function variable carrying an uncaught
// exception object out of a function (the "$exc" out-parameter).
const ExcVar = "$exc"

// Block is a sequence of statements.
type Block struct {
	Stmts []Stmt
}

// Stmt is an IR statement.
type Stmt interface{ irStmt() }

// Operand is a variable name or an integer constant.
type Operand struct {
	Var   string // "" when constant
	Const int64
}

// IsConst reports whether the operand is a literal.
func (o Operand) IsConst() bool { return o.Var == "" }

// VarOp returns a variable operand.
func VarOp(name string) Operand { return Operand{Var: name} }

// ConstOp returns a constant operand.
func ConstOp(c int64) Operand { return Operand{Const: c} }

func (o Operand) String() string {
	if o.IsConst() {
		return fmt.Sprintf("%d", o.Const)
	}
	return o.Var
}

// ArithOp is an integer operation.
type ArithOp byte

// Arithmetic operations for IntAssign.
const (
	Mov    ArithOp = iota // Dst = A
	Add                   // Dst = A + B
	Sub                   // Dst = A - B
	Mul                   // Dst = A * B
	Neg                   // Dst = -A
	Opaque                // Dst = unknown (input(), event result)
)

// IntAssign assigns an integer computation to a variable.
type IntAssign struct {
	Dst string
	Op  ArithOp
	A   Operand
	B   Operand
	Pos lang.Pos
}

// CmpKind is a comparison operator for conditions.
type CmpKind byte

// Comparison kinds.
const (
	CmpEq CmpKind = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = [...]string{CmpEq: "==", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">="}

func (k CmpKind) String() string { return cmpNames[k] }

// Negate returns the complementary comparison.
func (k CmpKind) Negate() CmpKind {
	switch k {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	default:
		return CmpLt
	}
}

// Cond is a branch condition in one of three forms:
//   - comparison of two integer operands (Kind over A, B),
//   - a boolean variable test (BoolVar != ""): holds iff the variable is true,
//   - an opaque condition (OpaqueID >= 0): statically unknown (null checks,
//     "did the call throw"), solver-wise a free 0/1 symbol.
//
// Negated complements the whole condition.
type Cond struct {
	A, B     Operand
	Kind     CmpKind
	BoolVar  string
	OpaqueID int32
	Negated  bool
}

// CmpCond builds a comparison condition.
func CmpCond(a Operand, k CmpKind, b Operand) Cond {
	return Cond{A: a, B: b, Kind: k, OpaqueID: -1}
}

// BoolCond builds a boolean-variable condition.
func BoolCond(v string) Cond { return Cond{BoolVar: v, OpaqueID: -1} }

// OpaqueCond builds an opaque condition with a stable per-site ID.
func OpaqueCond(id int32) Cond { return Cond{OpaqueID: id} }

// Negate returns the complement of c.
func (c Cond) Negate() Cond {
	c.Negated = !c.Negated
	return c
}

// IsOpaque reports whether c is an opaque condition.
func (c Cond) IsOpaque() bool { return c.OpaqueID >= 0 }

func (c Cond) String() string {
	var s string
	switch {
	case c.BoolVar != "":
		s = c.BoolVar
	case c.IsOpaque():
		s = fmt.Sprintf("opq%d", c.OpaqueID)
	default:
		s = fmt.Sprintf("%s %s %s", c.A, c.Kind, c.B)
	}
	if c.Negated {
		return "!(" + s + ")"
	}
	return s
}

// BoolAssign assigns a condition value to a boolean variable.
type BoolAssign struct {
	Dst  string
	Cond Cond
	Pos  lang.Pos
}

// ObjAssign copies an object reference: Dst = Src (Fig. 4 "assignment").
// A Src of "" assigns null (clears the reference; no graph edge).
type ObjAssign struct {
	Dst string
	Src string
	Pos lang.Pos
}

// NewObj allocates an object: Dst = new Type() (Fig. 4 "object initialization").
type NewObj struct {
	Dst  string
	Type string
	Site int32 // global allocation-site ID
	Pos  lang.Pos
}

// Store writes a field: Recv.Field = Src (Fig. 4 "field store").
type Store struct {
	Recv  string
	Field string
	Src   string
	Pos   lang.Pos
}

// Load reads a field: Dst = Recv.Field (Fig. 4 "field load").
type Load struct {
	Dst   string
	Recv  string
	Field string
	Pos   lang.Pos
}

// Call invokes a declared function. Dst is "" for void/ignored results;
// DstIsObject tells whether Dst receives an object reference.
type Call struct {
	Dst         string
	DstIsObject bool
	Callee      string
	// ObjArgs pairs each object-typed argument variable with the callee's
	// formal parameter name. IntArgs pairs integer argument operands
	// (already flattened) with formal names.
	ObjArgs []ArgPair
	IntArgs []IntArg
	Site    int32 // global call-site ID (also the ICFET call-edge ID)
	// Spawn marks the call as starting a concurrent task ("spawn f(x);",
	// a lowered `go` statement). The downstream pipeline treats spawn
	// calls exactly like ordinary calls — the over-approximation "callee
	// body runs here" covers every interleaving of a flow-insensitive
	// abstraction — while the MHP pass reads the flag to compute the
	// may-happen-in-parallel relation.
	Spawn bool
	Pos   lang.Pos
}

// ArgPair binds an object argument to a formal parameter.
type ArgPair struct {
	Arg    string // caller variable
	Formal string // callee parameter name
}

// IntArg binds an integer argument operand to a formal parameter.
type IntArg struct {
	Arg    Operand
	Formal string
}

// Event is a method call on an object-typed variable: Recv.Method(). Events
// are what FSMs transition on. If Dst != "" the (integer) result is bound
// opaquely.
type Event struct {
	Recv   string
	Method string
	Dst    string
	Pos    lang.Pos
}

// Return exits the function normally. Src is the returned operand/variable
// ("" none); SrcIsObject tells whether an object flows out.
type Return struct {
	Src         Operand
	SrcIsObject bool
	Pos         lang.Pos
}

// ThrowExit exits the function exceptionally. Lowering has already copied
// the thrown object into ExcVar.
type ThrowExit struct {
	Pos lang.Pos
}

// CatchBind marks a handler entry binding the in-flight exception object to
// a local variable. FromCall is the call site whose callee threw, or -1 when
// the throw was local (lowering then also emits an ObjAssign for the local
// object).
type CatchBind struct {
	Var      string
	Type     string
	FromCall int32
	Pos      lang.Pos
}

// If branches on Cond.
type If struct {
	Cond Cond
	Then *Block
	Else *Block
	Pos  lang.Pos
}

func (*IntAssign) irStmt()  {}
func (*BoolAssign) irStmt() {}
func (*ObjAssign) irStmt()  {}
func (*NewObj) irStmt()     {}
func (*Store) irStmt()      {}
func (*Load) irStmt()       {}
func (*Call) irStmt()       {}
func (*Event) irStmt()      {}
func (*Return) irStmt()     {}
func (*ThrowExit) irStmt()  {}
func (*CatchBind) irStmt()  {}
func (*If) irStmt()         {}
