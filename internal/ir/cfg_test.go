package ir

import (
	"testing"
)

func cfgFor(t *testing.T, src, fn string) *CFG {
	t.Helper()
	p := mustLower(t, src, Options{})
	f := p.FunByName[fn]
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	return BuildCFG(f)
}

func TestCFGStraightLine(t *testing.T) {
	c := cfgFor(t, `
fun main() {
  var x: int = 1;
  var y: int = x + 2;
  return;
}`, "main")
	if len(c.Blocks) != 1 {
		t.Fatalf("want 1 block, got %d", len(c.Blocks))
	}
	b := c.Blocks[0]
	if b.Branch != nil || len(b.Succs) != 0 {
		t.Fatalf("straight-line block has branch/succs: %+v", b)
	}
	if len(b.Stmts) != 3 { // x=1, y=x+2, return
		t.Fatalf("want 3 stmts, got %d", len(b.Stmts))
	}
}

func TestCFGDiamondJoins(t *testing.T) {
	c := cfgFor(t, `
fun main() {
  var x: int = input();
  var y: int = 0;
  if (x > 0) {
    y = 1;
  } else {
    y = 2;
  }
  y = y + 1;
  return;
}`, "main")
	entry := c.Blocks[0]
	if entry.Branch == nil || len(entry.Succs) != 2 {
		t.Fatalf("entry must branch: %+v", entry)
	}
	// Both arms must share the join block (the statements after the If).
	thenB, elseB := c.Blocks[entry.Succs[0]], c.Blocks[entry.Succs[1]]
	if len(thenB.Succs) != 1 || len(elseB.Succs) != 1 {
		t.Fatalf("arms must fall through: %v %v", thenB.Succs, elseB.Succs)
	}
	if thenB.Succs[0] != elseB.Succs[0] {
		t.Fatalf("arms join different blocks: %d vs %d", thenB.Succs[0], elseB.Succs[0])
	}
	join := c.Blocks[thenB.Succs[0]]
	if len(join.Preds) != 2 {
		t.Fatalf("join preds: %v", join.Preds)
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	c := cfgFor(t, `
fun main() {
  var x: int = input();
  if (x > 0) {
    return;
  }
  x = 2;
  return;
}`, "main")
	entry := c.Blocks[0]
	thenB := c.Blocks[entry.Succs[0]]
	if len(thenB.Succs) != 0 {
		t.Fatalf("returning arm must have no successors: %v", thenB.Succs)
	}
}

func TestCFGRPOStartsAtEntryAndCoversAll(t *testing.T) {
	c := cfgFor(t, `
fun main() {
  var x: int = input();
  if (x > 0) { x = 1; } else { x = 2; }
  if (x > 1) { x = 3; }
  return;
}`, "main")
	order := c.RPO()
	if len(order) != len(c.Blocks) {
		t.Fatalf("RPO covers %d of %d blocks", len(order), len(c.Blocks))
	}
	if order[0] != 0 {
		t.Fatalf("RPO must start at entry, got %d", order[0])
	}
	// Every block must appear after all of its predecessors (acyclic CFG).
	at := map[int]int{}
	for i, b := range order {
		at[b] = i
	}
	for _, blk := range c.Blocks {
		for _, p := range blk.Preds {
			if at[p] >= at[blk.Index] {
				t.Fatalf("block %d before its pred %d", blk.Index, p)
			}
		}
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		s    Stmt
		defs []string
		uses []string
	}{
		{&IntAssign{Dst: "x", Op: Add, A: VarOp("a"), B: ConstOp(1)}, []string{"x"}, []string{"a"}},
		{&IntAssign{Dst: "x", Op: Opaque}, []string{"x"}, nil},
		{&BoolAssign{Dst: "b", Cond: CmpCond(VarOp("a"), CmpLt, VarOp("c"))}, []string{"b"}, []string{"a", "c"}},
		{&ObjAssign{Dst: "o", Src: "p"}, []string{"o"}, []string{"p"}},
		{&ObjAssign{Dst: "o", Src: ""}, []string{"o"}, nil},
		{&NewObj{Dst: "o"}, []string{"o"}, nil},
		{&Store{Recv: "r", Field: "f", Src: "s"}, nil, []string{"r", "s"}},
		{&Load{Dst: "d", Recv: "r", Field: "f"}, []string{"d"}, []string{"r"}},
		{&Call{Dst: "d", ObjArgs: []ArgPair{{Arg: "o"}}, IntArgs: []IntArg{{Arg: VarOp("i")}}}, []string{"d"}, []string{"o", "i"}},
		{&Event{Recv: "r", Method: "m", Dst: "d"}, []string{"d"}, []string{"r"}},
		{&Event{Recv: "r", Method: "m"}, nil, []string{"r"}},
		{&Return{Src: VarOp("v")}, nil, []string{"v"}},
		{&ThrowExit{}, nil, []string{ExcVar}},
		{&CatchBind{Var: "e"}, []string{"e"}, nil},
	}
	for i, tc := range cases {
		if got := Defs(tc.s); !eqStrings(got, tc.defs) {
			t.Errorf("case %d (%T): defs %v, want %v", i, tc.s, got, tc.defs)
		}
		if got := Uses(tc.s); !eqStrings(got, tc.uses) {
			t.Errorf("case %d (%T): uses %v, want %v", i, tc.s, got, tc.uses)
		}
	}
}

func TestCondUses(t *testing.T) {
	if got := CondUses(BoolCond("b")); !eqStrings(got, []string{"b"}) {
		t.Errorf("bool cond uses %v", got)
	}
	if got := CondUses(OpaqueCond(3)); got != nil {
		t.Errorf("opaque cond uses %v", got)
	}
	if got := CondUses(CmpCond(VarOp("x"), CmpEq, ConstOp(4))); !eqStrings(got, []string{"x"}) {
		t.Errorf("cmp cond uses %v", got)
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
