package fsm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIOCheckerSemantics(t *testing.T) {
	f := BuiltinIO()
	s := f.Init
	for _, ev := range []string{"new", "write", "write", "close"} {
		s = f.Step(s, ev)
	}
	if !f.IsAccept(s) {
		t.Fatalf("new-write-write-close ends in %s, want accept", f.States[s])
	}
	// Write after close is an error.
	s = f.Step(s, "write")
	if s != ErrorState {
		t.Fatalf("write-after-close -> %s, want Error", f.States[s])
	}
	// Error is absorbing.
	if f.Step(s, "close") != ErrorState {
		t.Fatal("error must absorb")
	}
	// new without close: Open is not accept.
	s = f.Step(f.Init, "new")
	if f.IsAccept(s) {
		t.Fatal("Open must not be accepting (leak)")
	}
}

func TestLockChecker(t *testing.T) {
	f := BuiltinLock()
	s := f.Step(f.Init, "new")
	s = f.Step(s, "lock")
	s2 := f.Step(s, "unlock")
	if !f.IsAccept(s2) {
		t.Fatal("lock-unlock should be accepted")
	}
	// unlock before lock (mis-order, the HDFS bug of §5.1).
	if f.Step(f.Step(f.Init, "new"), "unlock") != ErrorState {
		t.Fatal("unlock-before-lock must be an error")
	}
	// double lock.
	if f.Step(s, "lock") != ErrorState {
		t.Fatal("double lock must be an error")
	}
}

func TestExceptionChecker(t *testing.T) {
	f := BuiltinException()
	s := f.Step(f.Init, "new")
	s = f.Step(s, "throw")
	if f.IsAccept(s) {
		t.Fatal("Thrown is not acceptable at exit")
	}
	s = f.Step(s, "catch")
	if !f.IsAccept(s) {
		t.Fatal("Caught is acceptable")
	}
}

func TestSocketChecker(t *testing.T) {
	f := BuiltinSocket()
	s := f.Init
	for _, ev := range []string{"new", "bind", "configureBlocking", "accept", "close"} {
		s = f.Step(s, ev)
	}
	if !f.IsAccept(s) {
		t.Fatalf("socket lifecycle ends in %s", f.States[s])
	}
	// Leak: never closed.
	s = f.Step(f.Step(f.Init, "new"), "bind")
	if f.IsAccept(s) {
		t.Fatal("Bound at exit is a leak")
	}
}

func TestRelComposeMatchesStep(t *testing.T) {
	f := BuiltinIO()
	events := []string{"new", "write", "close", "flush"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		seq := make([]string, n)
		for i := range seq {
			seq[i] = events[rng.Intn(len(events))]
		}
		r := Identity()
		s := f.Init
		for _, ev := range seq {
			r = Compose(r, EventRel(f, ev))
			s = f.Step(s, ev)
		}
		if r.Apply(f.Init) != 1<<uint(s) {
			t.Fatalf("relation disagrees with step on %v: rel=%b step=%d", seq, r.Apply(f.Init), s)
		}
	}
}

func TestRelComposeAssociative(t *testing.T) {
	f := BuiltinSocket()
	evs := f.Events()
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := EventRel(f, evs[rng.Intn(len(evs))])
		b := EventRel(f, evs[rng.Intn(len(evs))])
		c := EventRel(f, evs[rng.Intn(len(evs))])
		return Compose(Compose(a, b), c) == Compose(a, Compose(b, c))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRelIdentityLaws(t *testing.T) {
	f := BuiltinLock()
	id := Identity()
	for _, ev := range f.Events() {
		r := EventRel(f, ev)
		if Compose(id, r) != r || Compose(r, id) != r {
			t.Fatalf("identity law broken for %s", ev)
		}
	}
	if !id.IsIdentity() {
		t.Fatal("identity must self-report")
	}
}

func TestRelPackRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Rel
		for i := range r {
			r[i] = uint16(rng.Intn(1 << 16))
		}
		buf := r.Pack(nil)
		if len(buf) != PackedRelSize {
			return false
		}
		got, rest, err := UnpackRel(buf)
		return err == nil && got == r && len(rest) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackRelShortInput(t *testing.T) {
	for _, n := range []int{0, 1, PackedRelSize - 1} {
		if _, _, err := UnpackRel(make([]byte, n)); err == nil {
			t.Errorf("UnpackRel accepted %d bytes", n)
		}
	}
}

func TestParseSpec(t *testing.T) {
	src := `
# the paper's Fig. 3a property
fsm io for FileWriter {
  states Init Open Close;
  init Init;
  accept Init Close;
  new:   Init -> Open;
  write: Open -> Open;
  close: Open -> Close;
}
fsm lock for Lock {
  states Unheld Held;
  init Unheld;
  accept Unheld;
  lock:   Unheld -> Held;
  unlock: Held -> Unheld;
}`
	fs, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("parsed %d fsms", len(fs))
	}
	io := fs[0]
	if io.Type != "FileWriter" || io.Name != "io" {
		t.Fatalf("fsm header: %+v", io)
	}
	s := io.Step(io.Init, "new")
	if io.States[s] != "Open" {
		t.Fatalf("step: %s", io.States[s])
	}
	if io.Step(s, "bogus") != ErrorState {
		t.Fatal("undefined event must hit Error")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		`fsm x { states A; }`,                                     // missing "for"
		`fsm x for T { init A; }`,                                 // init before states
		`fsm x for T { states A; init B; }`,                       // unknown state
		`fsm x for T { states A; accept B; }`,                     // unknown accept
		`fsm x for T { states A; e: A -> B; }`,                    // unknown target
		`fsm x for T { states A;`,                                 // unterminated
		`}`,                                                       // stray brace
		`fsm x for T { states A; e: A -> A; e: A -> A; }`,         // duplicate
		`fsm x for T { states A B C D E F G H I J K L M N O P; }`, // too many
	}
	for _, src := range cases {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestFSMString(t *testing.T) {
	f := BuiltinIO()
	s := f.String()
	if s == "" {
		t.Fatal("empty render")
	}
}

func TestParseSpecWrapsErrSpec(t *testing.T) {
	bad := []string{
		`fsm x for T { states A; init B; }`,
		`fsm x for T { states A;`,
		`init A;`,
	}
	for _, src := range bad {
		_, err := ParseSpec(src)
		if err == nil {
			t.Fatalf("no error for %q", src)
		}
		if !errors.Is(err, ErrSpec) {
			t.Errorf("error for %q is not ErrSpec: %v", src, err)
		}
	}
}

func TestBuiltinsConstructCleanly(t *testing.T) {
	if len(Builtins()) != 4 {
		t.Fatal("want four builtin checkers")
	}
	if err := BuiltinsErr(); err != nil {
		t.Fatalf("builtin construction failed: %v", err)
	}
}
