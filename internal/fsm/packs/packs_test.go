package packs

import (
	"testing"

	"github.com/grapple-system/grapple/internal/fsm"
)

func TestRegistryBuilds(t *testing.T) {
	if err := BuildErr(); err != nil {
		t.Fatal(err)
	}
	want := []string{"context-cancel", "file-handle", "http-body", "mutex", "sql-rows", "use-after-release"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("pack names %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pack names %v, want %v", got, want)
		}
	}
	for _, p := range All() {
		if p.Doc == "" {
			t.Errorf("pack %s has no doc line", p.Name)
		}
		if p.FSM == nil || p.Rules == nil {
			t.Fatalf("pack %s incomplete", p.Name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-pack"); err == nil {
		t.Fatal("want error for unknown pack")
	}
	p, err := Get("mutex")
	if err != nil || p.Name != "mutex" {
		t.Fatalf("Get(mutex) = %v, %v", p, err)
	}
}

// TestSharedTypePacksAgree enforces the package contract: packs tracking the
// same object type must spell identical event names for identical call
// patterns, or first-binding-wins merging would silently drop events.
func TestSharedTypePacksAgree(t *testing.T) {
	byType := map[string][]*Pack{}
	for _, p := range All() {
		byType[p.FSM.Type] = append(byType[p.FSM.Type], p)
	}
	for typ, ps := range byType {
		if len(ps) < 2 {
			continue
		}
		base := ps[0]
		for _, p := range ps[1:] {
			for tm, ev := range p.Rules.Events {
				if got, ok := base.Rules.Events[tm]; ok && got != ev {
					t.Errorf("type %s: packs %s/%s disagree on %v: %q vs %q",
						typ, base.Name, p.Name, tm, got, ev)
				}
			}
			for fn, al := range p.Rules.FuncAllocs {
				if got, ok := base.Rules.FuncAllocs[fn]; ok && got != al {
					t.Errorf("type %s: packs %s/%s disagree on alloc %s",
						typ, base.Name, p.Name, fn)
				}
			}
		}
	}
}

// TestMergedRulesCoverAllPacks asserts every pack's bindings survive a
// whole-library merge (the `lint -pack`-less default path).
func TestMergedRulesCoverAllPacks(t *testing.T) {
	merged := MergedRules(All())
	for _, p := range All() {
		for tm, ev := range p.Rules.Events {
			if merged.Events[tm] != ev {
				t.Errorf("pack %s: merged rules lost event %v=%q", p.Name, tm, ev)
			}
		}
		for fn := range p.Rules.FuncAllocs {
			if _, ok := merged.FuncAllocs[fn]; !ok {
				t.Errorf("pack %s: merged rules lost alloc %s", p.Name, fn)
			}
		}
	}
}

// TestDevirtualizedBindingsAgree extends the shared-type contract to what
// devirtualization exposes. A devirtualized interface call lowers into a
// path-split over concrete receiver methods, and each arm then maps through
// a pack's (type, method) -> event binding. Two invariants keep every arm
// meaningful:
//
//  1. every bound event is in its pack FSM's alphabet (an arm must never
//     emit an event the property cannot step on), and
//  2. packs tracking the same type agree on which events are
//     concurrency-safe, so the GR002 exemption set cannot depend on which
//     pack happened to merge first.
func TestDevirtualizedBindingsAgree(t *testing.T) {
	for _, p := range All() {
		alphabet := map[string]bool{}
		for _, ev := range p.FSM.Events() {
			alphabet[ev] = true
		}
		for tm, ev := range p.Rules.Events {
			if tm.Type == p.FSM.Type && !alphabet[ev] {
				t.Errorf("pack %s: binding %v -> %q is outside the FSM alphabet %v",
					p.Name, tm, ev, p.FSM.Events())
			}
		}
		for tfm, ev := range p.Rules.FieldEvents {
			if tfm.Type == p.FSM.Type && !alphabet[ev] {
				t.Errorf("pack %s: field binding %v -> %q is outside the FSM alphabet",
					p.Name, tfm, ev)
			}
		}
	}
	byType := map[string][]*Pack{}
	for _, p := range All() {
		byType[p.FSM.Type] = append(byType[p.FSM.Type], p)
	}
	for typ, ps := range byType {
		if len(ps) < 2 {
			continue
		}
		base := ps[0]
		for _, p := range ps[1:] {
			for _, ev := range p.FSM.Events() {
				if base.FSM.IsConcurrencySafe(ev) != p.FSM.IsConcurrencySafe(ev) {
					t.Errorf("type %s: packs %s/%s disagree on concurrency safety of %q",
						typ, base.Name, p.Name, ev)
				}
			}
		}
	}
}

// TestPacksRegisterProperties asserts every pack FSM reaches the
// process-wide property registry the GR lint rules read their guard and
// release alphabets from.
func TestPacksRegisterProperties(t *testing.T) {
	known := map[string]bool{}
	for _, f := range fsm.KnownProperties() {
		known[f.Name+"/"+f.Type] = true
	}
	for _, p := range All() {
		if !known[p.FSM.Name+"/"+p.FSM.Type] {
			t.Errorf("pack %s FSM %s/%s not in the property registry",
				p.Name, p.FSM.Name, p.FSM.Type)
		}
	}
}
