package packs

import "testing"

func TestRegistryBuilds(t *testing.T) {
	if err := BuildErr(); err != nil {
		t.Fatal(err)
	}
	want := []string{"context-cancel", "file-handle", "http-body", "mutex", "sql-rows", "use-after-release"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("pack names %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pack names %v, want %v", got, want)
		}
	}
	for _, p := range All() {
		if p.Doc == "" {
			t.Errorf("pack %s has no doc line", p.Name)
		}
		if p.FSM == nil || p.Rules == nil {
			t.Fatalf("pack %s incomplete", p.Name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-pack"); err == nil {
		t.Fatal("want error for unknown pack")
	}
	p, err := Get("mutex")
	if err != nil || p.Name != "mutex" {
		t.Fatalf("Get(mutex) = %v, %v", p, err)
	}
}

// TestSharedTypePacksAgree enforces the package contract: packs tracking the
// same object type must spell identical event names for identical call
// patterns, or first-binding-wins merging would silently drop events.
func TestSharedTypePacksAgree(t *testing.T) {
	byType := map[string][]*Pack{}
	for _, p := range All() {
		byType[p.FSM.Type] = append(byType[p.FSM.Type], p)
	}
	for typ, ps := range byType {
		if len(ps) < 2 {
			continue
		}
		base := ps[0]
		for _, p := range ps[1:] {
			for tm, ev := range p.Rules.Events {
				if got, ok := base.Rules.Events[tm]; ok && got != ev {
					t.Errorf("type %s: packs %s/%s disagree on %v: %q vs %q",
						typ, base.Name, p.Name, tm, got, ev)
				}
			}
			for fn, al := range p.Rules.FuncAllocs {
				if got, ok := base.Rules.FuncAllocs[fn]; ok && got != al {
					t.Errorf("type %s: packs %s/%s disagree on alloc %s",
						typ, base.Name, p.Name, fn)
				}
			}
		}
	}
}

// TestMergedRulesCoverAllPacks asserts every pack's bindings survive a
// whole-library merge (the `lint -pack`-less default path).
func TestMergedRulesCoverAllPacks(t *testing.T) {
	merged := MergedRules(All())
	for _, p := range All() {
		for tm, ev := range p.Rules.Events {
			if merged.Events[tm] != ev {
				t.Errorf("pack %s: merged rules lost event %v=%q", p.Name, tm, ev)
			}
		}
		for fn := range p.Rules.FuncAllocs {
			if _, ok := merged.FuncAllocs[fn]; !ok {
				t.Errorf("pack %s: merged rules lost alloc %s", p.Name, fn)
			}
		}
	}
}
