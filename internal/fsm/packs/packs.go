// Package packs is the curated property-pack library: each pack pairs an FSM
// typestate property with the gofront binding rules that map real Go call
// patterns onto the FSM's alphabet. Packs are what `grapple run -pack` and
// `grapple lint -pack` select.
//
// Packs that track the same object type MUST agree on event names (the
// file-handle and use-after-release packs both spell their alphabet
// new/use/close over os_File); gofront merges the rule sets of every
// selected pack with first-binding-wins semantics, so a disagreement would
// silently drop events.
package packs

import (
	"fmt"
	"sort"

	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/gofront"
)

// Pack binds one FSM property to the Go call patterns that drive it.
type Pack struct {
	// Name selects the pack on the command line.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// FSM is the typestate property, over the pack's tracked object type.
	FSM *fsm.FSM
	// Rules bind Go calls to allocations and FSM events.
	Rules *gofront.Rules
}

var (
	registry []*Pack
	buildErr error
)

func init() { registry, buildErr = build() }

// All returns every registered pack, sorted by name.
func All() []*Pack { return registry }

// BuildErr reports whether the static pack definitions failed to construct;
// always nil in a correct build (asserted by tests).
func BuildErr() error { return buildErr }

// Get returns the named pack, or an error listing what exists.
func Get(name string) (*Pack, error) {
	for _, p := range registry {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown property pack %q (have: %v)", name, Names())
}

// Names returns the sorted pack names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, p := range registry {
		out = append(out, p.Name)
	}
	return out
}

// MergedRules folds the rules of the given packs into one set.
func MergedRules(ps []*Pack) *gofront.Rules {
	r := gofront.NewRules()
	for _, p := range ps {
		r.Merge(p.Rules)
	}
	return r
}

// fsmBuilder accumulates the first error across FSM construction calls so
// pack definitions read declaratively without panics.
type fsmBuilder struct {
	f   *fsm.FSM
	err error
}

func newFSM(name, typ string, states ...string) *fsmBuilder {
	f, err := fsm.New(name, typ, states...)
	return &fsmBuilder{f: f, err: err}
}

func (b *fsmBuilder) trans(from, event, to string) *fsmBuilder {
	if b.err == nil {
		b.err = b.f.AddTransition(from, event, to)
	}
	return b
}

func (b *fsmBuilder) accept(states ...string) *fsmBuilder {
	if b.err == nil {
		b.err = b.f.SetAccept(states...)
	}
	return b
}

func (b *fsmBuilder) done() (*fsm.FSM, error) { return b.f, b.err }

// fileUseEvents maps every value-observing *os.File method to the shared
// "use" event; Close maps to "close".
func fileRules() *gofront.Rules {
	r := gofront.NewRules()
	for _, fn := range []string{"Open", "Create", "OpenFile", "CreateTemp"} {
		r.FuncAllocs["os."+fn] = gofront.Alloc{Type: "os_File", Obj: 0, Err: 1}
	}
	// os.NewFile cannot fail.
	r.FuncAllocs["os.NewFile"] = gofront.Alloc{Type: "os_File", Obj: 0, Err: -1}
	for _, m := range []string{
		"Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteString",
		"Seek", "Sync", "Truncate", "Stat", "Fd", "Name", "Chmod", "Chown",
		"SetDeadline", "SetReadDeadline", "SetWriteDeadline",
	} {
		r.Events[gofront.TypeMethod{Type: "os_File", Method: m}] = "use"
	}
	r.Events[gofront.TypeMethod{Type: "os_File", Method: "Close"}] = "close"
	return r
}

func build() ([]*Pack, error) {
	var out []*Pack

	// file-handle: every opened file must be closed exactly once; uses are
	// legal only while open. Leak = dying in Open.
	fh, err := newFSM("file-handle", "os_File", "Init", "Open", "Closed").
		trans("Init", "new", "Open").
		trans("Open", "use", "Open").
		trans("Open", "close", "Closed").
		trans("Closed", "close", "Closed").
		accept("Init", "Closed").done()
	if err != nil {
		return nil, err
	}
	out = append(out, &Pack{
		Name:  "file-handle",
		Doc:   "os.File lifecycle: opened files are used while open and closed before death",
		FSM:   fh,
		Rules: fileRules(),
	})

	// use-after-release: same alphabet, but ONLY flags operations on a
	// released handle; never leak-reports (all states accept at death).
	uar, err := newFSM("use-after-release", "os_File", "Init", "Live", "Released").
		trans("Init", "new", "Live").
		trans("Live", "use", "Live").
		trans("Live", "close", "Released").
		trans("Released", "close", "Released").
		accept("Init", "Live", "Released").done()
	if err != nil {
		return nil, err
	}
	out = append(out, &Pack{
		Name:  "use-after-release",
		Doc:   "no reads/writes/seeks on an os.File after Close (double Close allowed)",
		FSM:   uar,
		Rules: fileRules(),
	})

	// mutex: Unlock only while locked; dying locked is a leak.
	mu, err := newFSM("mutex", "sync_Mutex", "Unlocked", "Locked").
		trans("Unlocked", "new", "Unlocked").
		trans("Unlocked", "lock", "Locked").
		trans("Locked", "unlock", "Unlocked").
		accept("Unlocked").done()
	if err != nil {
		return nil, err
	}
	// Spawn bindings: a sync.Mutex exists to be shared across goroutines, so
	// its own events are concurrency-safe by definition — GR002 never asks
	// for a guard around the guard.
	mu.MarkConcurrencySafe("lock", "unlock")
	muRules := gofront.NewRules()
	muRules.CompositeAllocs["sync.Mutex"] = "sync_Mutex"
	muRules.CompositeAllocs["sync.RWMutex"] = "sync_Mutex"
	muRules.Events[gofront.TypeMethod{Type: "sync_Mutex", Method: "Lock"}] = "lock"
	muRules.Events[gofront.TypeMethod{Type: "sync_Mutex", Method: "Unlock"}] = "unlock"
	out = append(out, &Pack{
		Name:  "mutex",
		Doc:   "sync.Mutex ordering: no double-lock/double-unlock, no exit while locked",
		FSM:   mu,
		Rules: muRules,
	})

	// context-cancel: the CancelFunc returned by context.WithCancel must be
	// invoked on every path (dying Armed leaks the context's resources).
	cc, err := newFSM("context-cancel", "context_CancelFunc", "Init", "Armed", "Done").
		trans("Init", "new", "Armed").
		trans("Armed", "cancel", "Done").
		trans("Done", "cancel", "Done").
		accept("Init", "Done").done()
	if err != nil {
		return nil, err
	}
	// Spawn binding: context.CancelFunc is documented goroutine-safe — the
	// whole point is cancelling from another goroutine.
	cc.MarkConcurrencySafe("cancel")
	ccRules := gofront.NewRules()
	for _, fn := range []string{"WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause"} {
		ccRules.FuncAllocs["context."+fn] = gofront.Alloc{Type: "context_CancelFunc", Obj: 1, Err: -1}
	}
	// Calling the tracked func value IS the cancel event.
	ccRules.CallEvents["context_CancelFunc"] = "cancel"
	out = append(out, &Pack{
		Name:  "context-cancel",
		Doc:   "context.CancelFunc propagation: every WithCancel/WithTimeout cancel func is called",
		FSM:   cc,
		Rules: ccRules,
	})

	// http-body: http.Response bodies must be closed (events fire through
	// the Body field, attributed to the response object).
	hb, err := newFSM("http-body", "http_Response", "Init", "Open", "Closed").
		trans("Init", "new", "Open").
		trans("Open", "use", "Open").
		trans("Open", "close", "Closed").
		trans("Closed", "close", "Closed").
		accept("Init", "Closed").done()
	if err != nil {
		return nil, err
	}
	hbRules := gofront.NewRules()
	for _, fn := range []string{"Get", "Post", "PostForm", "Head"} {
		hbRules.FuncAllocs["http."+fn] = gofront.Alloc{Type: "http_Response", Obj: 0, Err: 1}
	}
	hbRules.MethodAllocs[gofront.TypeMethod{Type: "http_Client", Method: "Do"}] =
		gofront.Alloc{Type: "http_Response", Obj: 0, Err: 1}
	hbRules.FieldEvents[gofront.TypeFieldMethod{Type: "http_Response", Field: "Body", Method: "Close"}] = "close"
	hbRules.FieldEvents[gofront.TypeFieldMethod{Type: "http_Response", Field: "Body", Method: "Read"}] = "use"
	out = append(out, &Pack{
		Name:  "http-body",
		Doc:   "http.Response.Body close: every response body is closed before death",
		FSM:   hb,
		Rules: hbRules,
	})

	// sql-rows: result sets must be closed; iteration only while open.
	sr, err := newFSM("sql-rows", "sql_Rows", "Init", "Open", "Closed").
		trans("Init", "new", "Open").
		trans("Open", "use", "Open").
		trans("Open", "close", "Closed").
		trans("Closed", "close", "Closed").
		accept("Init", "Closed").done()
	if err != nil {
		return nil, err
	}
	srRules := gofront.NewRules()
	for _, recv := range []string{"sql_DB", "sql_Tx", "sql_Stmt"} {
		for _, m := range []string{"Query", "QueryContext"} {
			srRules.MethodAllocs[gofront.TypeMethod{Type: recv, Method: m}] =
				gofront.Alloc{Type: "sql_Rows", Obj: 0, Err: 1}
		}
	}
	// sql.Open supplies the receiver type without tracking the DB itself.
	srRules.FuncAllocs["sql.Open"] = gofront.Alloc{Type: "sql_DB", Obj: 0, Err: 1}
	for _, m := range []string{"Next", "Scan", "Err", "NextResultSet", "Columns", "ColumnTypes"} {
		srRules.Events[gofront.TypeMethod{Type: "sql_Rows", Method: m}] = "use"
	}
	srRules.Events[gofront.TypeMethod{Type: "sql_Rows", Method: "Close"}] = "close"
	out = append(out, &Pack{
		Name:  "sql-rows",
		Doc:   "database/sql.Rows close: result sets are closed, iterated only while open",
		FSM:   sr,
		Rules: srRules,
	})

	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	// Publish every pack FSM so the lint layer (which cannot import this
	// package) can derive release and guard alphabets for the pack types.
	for _, p := range out {
		fsm.RegisterProperty(p.FSM)
	}
	return out, nil
}
