package fsm

import (
	"sort"
	"sync"
)

// The property registry lets higher layers (the property-pack library)
// publish their FSMs to consumers that cannot import them directly: the
// lint rules in internal/analysis derive release/guard alphabets from
// "every property this process knows about", which is the builtins plus
// whatever packs registered at init time. Registration is additive and
// idempotent by (Name, Type).

var (
	regMu      sync.Mutex
	registered []*FSM
)

// RegisterProperty publishes an FSM to the process-wide property registry.
// Re-registering the same (Name, Type) pair replaces the earlier entry.
func RegisterProperty(f *FSM) {
	if f == nil {
		return
	}
	regMu.Lock()
	defer regMu.Unlock()
	for i, r := range registered {
		if r.Name == f.Name && r.Type == f.Type {
			registered[i] = f
			return
		}
	}
	registered = append(registered, f)
}

// KnownProperties returns the builtins plus every registered FSM, sorted by
// name then type so alphabet derivations are deterministic regardless of
// registration order.
func KnownProperties() []*FSM {
	regMu.Lock()
	defer regMu.Unlock()
	out := append(Builtins(), registered...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}
