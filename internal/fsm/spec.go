package fsm

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSpec marks FSM spec-file failures: parse errors and inconsistent
// definitions. Callers test with errors.Is and report the position carried
// in the message instead of crashing.
var ErrSpec = errors.New("fsm spec")

// ParseSpec parses one or more FSM specifications from a small text format:
//
//	fsm IOChecker for FileWriter {
//	  states Init Open Close;
//	  init Init;
//	  accept Init Close;
//	  new:   Init  -> Open;
//	  write: Open  -> Open;
//	  close: Open  -> Close;
//	}
//
// Lines starting with '#' are comments. Any (state, event) pair without a
// rule transitions to the implicit Error state.
func ParseSpec(src string) ([]*FSM, error) {
	var out []*FSM
	var cur *FSM
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "fsm "):
			if cur != nil {
				return nil, fmt.Errorf("%w: line %d: nested fsm", ErrSpec, lineNo)
			}
			rest := strings.TrimSuffix(strings.TrimSpace(line[4:]), "{")
			parts := strings.Fields(rest)
			if len(parts) != 3 || parts[1] != "for" {
				return nil, fmt.Errorf("%w: line %d: want 'fsm <name> for <Type> {'", ErrSpec, lineNo)
			}
			cur = &FSM{Name: parts[0], Type: parts[2]}
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: stray }", ErrSpec, lineNo)
			}
			if len(cur.States) == 0 {
				return nil, fmt.Errorf("%w: line %d: fsm %s has no states", ErrSpec, lineNo, cur.Name)
			}
			out = append(out, cur)
			cur = nil
		case strings.HasPrefix(line, "states "):
			if cur == nil || cur.States != nil {
				return nil, fmt.Errorf("%w: line %d: misplaced states", ErrSpec, lineNo)
			}
			names := strings.Fields(strings.TrimSuffix(line[7:], ";"))
			f, err := New(cur.Name, cur.Type, names...)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrSpec, lineNo, err)
			}
			*cur = *f
		case strings.HasPrefix(line, "init "):
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: misplaced init", ErrSpec, lineNo)
			}
			if err := cur.SetInit(strings.TrimSuffix(strings.TrimSpace(line[5:]), ";")); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrSpec, lineNo, err)
			}
		case strings.HasPrefix(line, "accept "):
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: misplaced accept", ErrSpec, lineNo)
			}
			if err := cur.SetAccept(strings.Fields(strings.TrimSuffix(line[7:], ";"))...); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrSpec, lineNo, err)
			}
		default:
			// event: From -> To;
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: statement outside fsm", ErrSpec, lineNo)
			}
			colon := strings.Index(line, ":")
			arrow := strings.Index(line, "->")
			if colon < 0 || arrow < colon {
				return nil, fmt.Errorf("%w: line %d: want 'event: From -> To;'", ErrSpec, lineNo)
			}
			event := strings.TrimSpace(line[:colon])
			from := strings.TrimSpace(line[colon+1 : arrow])
			to := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line[arrow+2:]), ";"))
			if err := cur.AddTransition(from, event, to); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrSpec, lineNo, err)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%w: unterminated fsm %s", ErrSpec, cur.Name)
	}
	return out, nil
}

// Builtin checkers: the four finite-state properties of the paper's
// evaluation (§5): Java I/O, lock usage, exception handling, socket usage.

// BuiltinIO is the Java-I/O resource checker (Fig. 3a): a writer must be
// closed before exit; writing after close is an error.
func BuiltinIO() *FSM {
	f, _ := New("io", "FileWriter", "Init", "Open", "Close")
	_ = f.SetInit("Init")
	_ = f.SetAccept("Init", "Close")
	must(f.AddTransition("Init", "new", "Open"))
	must(f.AddTransition("Open", "write", "Open"))
	must(f.AddTransition("Open", "flush", "Open"))
	must(f.AddTransition("Open", "close", "Close"))
	must(f.AddTransition("Close", "close", "Close"))
	return f
}

// BuiltinLock is the lock-usage checker: every lock must be released, and
// lock/unlock must not be misordered.
func BuiltinLock() *FSM {
	f, _ := New("lock", "Lock", "Unheld", "Held")
	_ = f.SetInit("Unheld")
	_ = f.SetAccept("Unheld")
	must(f.AddTransition("Unheld", "new", "Unheld"))
	must(f.AddTransition("Unheld", "lock", "Held"))
	must(f.AddTransition("Held", "unlock", "Unheld"))
	return f
}

// BuiltinException is the exception-handling checker (after Yuan et al.,
// paper §5): a thrown exception must reach a handler; reaching a method
// exit (or program exit) still in Thrown state is a bug.
func BuiltinException() *FSM {
	f, _ := New("exception", "Exception", "Raised", "Thrown", "Caught")
	_ = f.SetInit("Raised")
	_ = f.SetAccept("Raised", "Caught")
	must(f.AddTransition("Raised", "new", "Raised"))
	must(f.AddTransition("Raised", "throw", "Thrown"))
	must(f.AddTransition("Thrown", "catch", "Caught"))
	must(f.AddTransition("Caught", "throw", "Thrown"))
	return f
}

// BuiltinSocket is the socket-usage checker (Fig. 2): a channel must be
// opened, optionally bound/configured/accepted, and closed before exit.
func BuiltinSocket() *FSM {
	f, _ := New("socket", "Socket", "Init", "Open", "Bound", "Closed")
	_ = f.SetInit("Init")
	_ = f.SetAccept("Init", "Closed")
	must(f.AddTransition("Init", "new", "Open"))
	must(f.AddTransition("Open", "bind", "Bound"))
	must(f.AddTransition("Open", "configureBlocking", "Open"))
	must(f.AddTransition("Open", "connect", "Bound"))
	must(f.AddTransition("Open", "setTcpNoDelay", "Open"))
	must(f.AddTransition("Open", "close", "Closed"))
	must(f.AddTransition("Bound", "configureBlocking", "Bound"))
	must(f.AddTransition("Bound", "setTcpNoDelay", "Bound"))
	must(f.AddTransition("Bound", "accept", "Bound"))
	must(f.AddTransition("Bound", "send", "Bound"))
	must(f.AddTransition("Bound", "recv", "Bound"))
	must(f.AddTransition("Bound", "close", "Closed"))
	// close() on an already-closed channel is a no-op in Java NIO.
	must(f.AddTransition("Closed", "close", "Closed"))
	return f
}

// Builtins returns the paper's four checkers.
func Builtins() []*FSM {
	return []*FSM{BuiltinIO(), BuiltinLock(), BuiltinException(), BuiltinSocket()}
}

// builtinErr records the first builtin-construction failure. The builtin
// definitions are static, so this is always nil in a correct build — the
// package tests assert it — but a definition bug now surfaces as a checkable
// error instead of an init-time crash in every importer.
var builtinErr error

// BuiltinsErr reports whether builtin checker construction failed.
func BuiltinsErr() error { return builtinErr }

func must(err error) {
	if err != nil && builtinErr == nil {
		builtinErr = fmt.Errorf("%w: builtin: %v", ErrSpec, err)
	}
}
