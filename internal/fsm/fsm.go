// Package fsm defines the finite-state-machine property specifications that
// Grapple checks (paper §1, §2) and the transition relations the dataflow
// phase composes during transitive closure.
//
// An FSM applies to one object type (FileWriter, Lock, Socket, ...). Events
// are method names invoked on tracked objects plus the implicit "new" event.
// Any (state, event) pair without an explicit transition moves to the
// implicit Error state ("an event that makes the object transition to an
// unacceptable state indicates a bug"). Relations over the (≤15 user states
// + Error) state set are bit matrices, so composing two dataflow edges is a
// handful of word operations — cheap enough to run inside the engine's
// edge-pair join.
package fsm

import (
	"fmt"
	"sort"
	"strings"
)

// MaxStates bounds the number of states including the implicit Error state.
const MaxStates = 16

// ErrorState is the implicit error state's index in every FSM.
const ErrorState = 0

// FSM is a finite-state property for one object type.
type FSM struct {
	Name string
	// Type is the object type the FSM applies to.
	Type string
	// States holds state names; index 0 is always the implicit "Error".
	States []string
	// Init is the state before any event (usually "Init"/"Uninit").
	Init int
	// Accept is a bitmask of states acceptable at object death / program
	// exit.
	Accept uint16
	// trans[s][event] = target state.
	trans []map[string]int
	// events in insertion order (for diagnostics).
	events []string
	// safeEvents marks events that are safe to perform on an object shared
	// with a concurrently running task without external synchronization
	// (sync.Mutex.Lock, context.CancelFunc invocation, ...). The GR002 lint
	// rule exempts them; everything else on a goroutine-shared object wants
	// a dominating guard acquire.
	safeEvents map[string]bool
}

// New creates an FSM for the given object type with the given user states;
// the first user state is initial. "Error" is added implicitly at index 0.
func New(name, typ string, states ...string) (*FSM, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("fsm %s: need at least one state", name)
	}
	if len(states)+1 > MaxStates {
		return nil, fmt.Errorf("fsm %s: too many states (max %d)", name, MaxStates-1)
	}
	f := &FSM{Name: name, Type: typ, States: append([]string{"Error"}, states...)}
	f.Init = 1
	f.trans = make([]map[string]int, len(f.States))
	for i := range f.trans {
		f.trans[i] = map[string]int{}
	}
	return f, nil
}

// StateIndex returns the index of a state name, or -1.
func (f *FSM) StateIndex(name string) int {
	for i, s := range f.States {
		if s == name {
			return i
		}
	}
	return -1
}

// SetInit sets the initial state by name.
func (f *FSM) SetInit(state string) error {
	i := f.StateIndex(state)
	if i < 0 {
		return fmt.Errorf("fsm %s: unknown state %q", f.Name, state)
	}
	f.Init = i
	return nil
}

// SetAccept marks states acceptable at exit.
func (f *FSM) SetAccept(states ...string) error {
	f.Accept = 0
	for _, s := range states {
		i := f.StateIndex(s)
		if i < 0 {
			return fmt.Errorf("fsm %s: unknown state %q", f.Name, s)
		}
		f.Accept |= 1 << uint(i)
	}
	return nil
}

// AddTransition adds "from --event--> to".
func (f *FSM) AddTransition(from, event, to string) error {
	fi, ti := f.StateIndex(from), f.StateIndex(to)
	if fi < 0 || ti < 0 {
		return fmt.Errorf("fsm %s: unknown state in %s --%s--> %s", f.Name, from, event, to)
	}
	if _, dup := f.trans[fi][event]; dup {
		return fmt.Errorf("fsm %s: duplicate transition %s --%s-->", f.Name, from, event)
	}
	f.trans[fi][event] = ti
	f.events = append(f.events, event)
	return nil
}

// Step returns the successor of state s on event; undefined transitions go
// to Error, and Error is absorbing.
func (f *FSM) Step(s int, event string) int {
	if s == ErrorState {
		return ErrorState
	}
	if t, ok := f.trans[s][event]; ok {
		return t
	}
	return ErrorState
}

// Events returns the sorted set of event names the FSM mentions.
func (f *FSM) Events() []string {
	set := map[string]bool{}
	for _, e := range f.events {
		set[e] = true
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// IsAccept reports whether state s is acceptable at exit.
func (f *FSM) IsAccept(s int) bool { return f.Accept&(1<<uint(s)) != 0 }

// MarkConcurrencySafe declares events safe to perform without external
// synchronization on an object shared with a spawned task.
func (f *FSM) MarkConcurrencySafe(events ...string) {
	if f.safeEvents == nil {
		f.safeEvents = map[string]bool{}
	}
	for _, ev := range events {
		f.safeEvents[ev] = true
	}
}

// IsConcurrencySafe reports whether an event was marked by
// MarkConcurrencySafe.
func (f *FSM) IsConcurrencySafe(event string) bool { return f.safeEvents[event] }

// Rel is a transition relation over FSM states: Rel[i] is the bitmask of
// states reachable from state i. Composing relations is a tiny boolean
// matrix product, which keeps typestate tracking inside the engine's
// edge-pair computation model.
type Rel [MaxStates]uint16

// Identity returns the identity relation.
func Identity() Rel {
	var r Rel
	for i := range r {
		r[i] = 1 << uint(i)
	}
	return r
}

// EventRel returns the relation of a single event under f.
func EventRel(f *FSM, event string) Rel {
	var r Rel
	for i := 0; i < len(f.States); i++ {
		r[i] = 1 << uint(f.Step(i, event))
	}
	return r
}

// Compose returns a∘b: first a, then b.
func Compose(a, b Rel) Rel {
	var out Rel
	for i := 0; i < MaxStates; i++ {
		row := a[i]
		var acc uint16
		for row != 0 {
			j := trailingZeros16(row)
			row &^= 1 << uint(j)
			acc |= b[j]
		}
		out[i] = acc
	}
	return out
}

// Union returns the pointwise union of two relations.
func Union(a, b Rel) Rel {
	var out Rel
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

// IsIdentity reports whether r is the identity relation.
func (r Rel) IsIdentity() bool { return r == Identity() }

// Apply returns the set of states reachable from state s.
func (r Rel) Apply(s int) uint16 { return r[s] }

// Pack serializes the relation to 32 bytes (little-endian rows).
func (r Rel) Pack(dst []byte) []byte {
	for _, row := range r {
		dst = append(dst, byte(row), byte(row>>8))
	}
	return dst
}

// UnpackRel deserializes a relation packed by Pack. It returns an error
// (never panics) when src is shorter than PackedRelSize, so a truncated or
// corrupted payload is diagnosable instead of decoding as garbage.
func UnpackRel(src []byte) (Rel, []byte, error) {
	var r Rel
	if len(src) < PackedRelSize {
		return r, nil, fmt.Errorf("fsm: packed relation needs %d bytes, have %d", PackedRelSize, len(src))
	}
	for i := range r {
		r[i] = uint16(src[2*i]) | uint16(src[2*i+1])<<8
	}
	return r, src[2*MaxStates:], nil
}

// PackedRelSize is the byte size of a packed relation.
const PackedRelSize = 2 * MaxStates

func trailingZeros16(x uint16) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// String renders the FSM.
func (f *FSM) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsm %s (type %s) init=%s accept=", f.Name, f.Type, f.States[f.Init])
	var acc []string
	for i, s := range f.States {
		if f.IsAccept(i) {
			acc = append(acc, s)
		}
	}
	b.WriteString(strings.Join(acc, ","))
	return b.String()
}
