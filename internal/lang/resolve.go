package lang

import "fmt"

// Info carries resolver results consumed by IR lowering.
type Info struct {
	Prog *Program
	// VarTypes maps each function to a variable-name -> type-name table.
	// MiniLang forbids shadowing, so names are unique within a function.
	VarTypes map[*FunDecl]map[string]string
	// ObjectTypes is the set of object type names mentioned anywhere.
	ObjectTypes map[string]bool
}

// Resolve checks the program and computes type information:
//   - every variable is declared before use and never shadowed,
//   - expression categories (int/bool/object) are consistent,
//   - calls match declared functions and arity,
//   - method calls and field accesses apply only to object-typed variables.
func Resolve(prog *Program) (*Info, error) {
	info := &Info{
		Prog:        prog,
		VarTypes:    make(map[*FunDecl]map[string]string),
		ObjectTypes: make(map[string]bool),
	}
	for _, t := range prog.Types {
		info.ObjectTypes[t.Name] = true
	}
	funs := map[string]*FunDecl{}
	for _, f := range prog.Funs {
		funs[f.Name] = f
	}
	for _, f := range prog.Funs {
		r := &resolver{info: info, funs: funs, fun: f, vars: map[string]string{}}
		for _, p := range f.Params {
			if err := r.declare(p.Name, p.Type, f.Pos); err != nil {
				return nil, err
			}
		}
		if err := r.stmts(f.Body); err != nil {
			return nil, err
		}
		if IsObjectType(f.RetType) {
			info.ObjectTypes[f.RetType] = true
		}
		info.VarTypes[f] = r.vars
	}
	return info, nil
}

type resolver struct {
	info *Info
	funs map[string]*FunDecl
	fun  *FunDecl
	vars map[string]string
}

func (r *resolver) declare(name, typ string, pos Pos) error {
	if _, dup := r.vars[name]; dup {
		return fmt.Errorf("%s: variable %q redeclared in %s (MiniLang forbids shadowing)", pos, name, r.fun.Name)
	}
	r.vars[name] = typ
	if IsObjectType(typ) {
		r.info.ObjectTypes[typ] = true
	}
	return nil
}

func (r *resolver) typeOfVar(name string, pos Pos) (string, error) {
	t, ok := r.vars[name]
	if !ok {
		return "", fmt.Errorf("%s: undeclared variable %q in %s", pos, name, r.fun.Name)
	}
	return t, nil
}

// category reduces a type name to "int", "bool" or "object".
func category(typ string) string {
	if typ == "int" || typ == "bool" {
		return typ
	}
	return "object"
}

func (r *resolver) stmts(list []Stmt) error {
	for _, s := range list {
		if err := r.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (r *resolver) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDecl:
		if err := r.declare(s.Name, s.Type, s.Pos); err != nil {
			return err
		}
		if s.Init != nil {
			ct, err := r.expr(s.Init)
			if err != nil {
				return err
			}
			if err := r.assignable(category(s.Type), ct, s.Pos); err != nil {
				return err
			}
		}
		return nil
	case *AssignStmt:
		var lcat string
		switch lhs := s.LHS.(type) {
		case *Ident:
			t, err := r.typeOfVar(lhs.Name, lhs.Pos)
			if err != nil {
				return err
			}
			lcat = category(t)
		case *FieldAccess:
			t, err := r.typeOfVar(lhs.Recv.Name, lhs.Pos)
			if err != nil {
				return err
			}
			if category(t) != "object" {
				return fmt.Errorf("%s: field store on non-object %q", lhs.Pos, lhs.Recv.Name)
			}
			lcat = "object" // fields hold object references
		default:
			return fmt.Errorf("%s: invalid assignment target", s.Pos)
		}
		rcat, err := r.expr(s.RHS)
		if err != nil {
			return err
		}
		return r.assignable(lcat, rcat, s.Pos)
	case *ExprStmt:
		_, err := r.expr(s.X)
		return err
	case *SpawnStmt:
		// The spawned call type-checks exactly like a call statement; its
		// result (if any) is discarded on the spawning side.
		_, err := r.expr(s.Call)
		return err
	case *IfStmt:
		ct, err := r.expr(s.Cond)
		if err != nil {
			return err
		}
		if ct != "bool" {
			return fmt.Errorf("%s: if condition must be bool, got %s", s.Pos, ct)
		}
		if err := r.stmts(s.Then); err != nil {
			return err
		}
		return r.stmts(s.Else)
	case *WhileStmt:
		ct, err := r.expr(s.Cond)
		if err != nil {
			return err
		}
		if ct != "bool" {
			return fmt.Errorf("%s: while condition must be bool, got %s", s.Pos, ct)
		}
		return r.stmts(s.Body)
	case *ReturnStmt:
		if s.X == nil {
			if r.fun.RetType != "" {
				return fmt.Errorf("%s: %s must return a %s", s.Pos, r.fun.Name, r.fun.RetType)
			}
			return nil
		}
		if r.fun.RetType == "" {
			return fmt.Errorf("%s: %s returns no value", s.Pos, r.fun.Name)
		}
		ct, err := r.expr(s.X)
		if err != nil {
			return err
		}
		return r.assignable(category(r.fun.RetType), ct, s.Pos)
	case *ThrowStmt:
		ct, err := r.expr(s.X)
		if err != nil {
			return err
		}
		if ct != "object" {
			return fmt.Errorf("%s: throw requires an object, got %s", s.Pos, ct)
		}
		return nil
	case *TryStmt:
		if err := r.stmts(s.Try); err != nil {
			return err
		}
		catchType := s.CatchType
		if catchType == "" {
			catchType = "Exception"
		}
		if err := r.declare(s.CatchVar, catchType, s.Pos); err != nil {
			return err
		}
		return r.stmts(s.Catch)
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (r *resolver) assignable(lcat, rcat string, pos Pos) error {
	if rcat == "null" {
		if lcat == "object" {
			return nil
		}
		return fmt.Errorf("%s: cannot assign null to %s", pos, lcat)
	}
	if lcat != rcat {
		return fmt.Errorf("%s: cannot assign %s to %s", pos, rcat, lcat)
	}
	return nil
}

// expr type-checks an expression and returns its category:
// "int", "bool", "object", or "null".
func (r *resolver) expr(e Expr) (string, error) {
	switch e := e.(type) {
	case *IntLit:
		return "int", nil
	case *BoolLit:
		return "bool", nil
	case *NullLit:
		return "null", nil
	case *InputExpr:
		return "int", nil
	case *Ident:
		t, err := r.typeOfVar(e.Name, e.Pos)
		if err != nil {
			return "", err
		}
		return category(t), nil
	case *FieldAccess:
		t, err := r.typeOfVar(e.Recv.Name, e.Pos)
		if err != nil {
			return "", err
		}
		if category(t) != "object" {
			return "", fmt.Errorf("%s: field load on non-object %q", e.Pos, e.Recv.Name)
		}
		return "object", nil
	case *NewExpr:
		if !IsObjectType(e.Type) {
			return "", fmt.Errorf("%s: cannot allocate primitive type %q", e.Pos, e.Type)
		}
		r.info.ObjectTypes[e.Type] = true
		return "object", nil
	case *CallExpr:
		f, ok := r.funs[e.Name]
		if !ok {
			return "", fmt.Errorf("%s: call to undeclared function %q", e.Pos, e.Name)
		}
		if len(e.Args) != len(f.Params) {
			return "", fmt.Errorf("%s: %s expects %d args, got %d", e.Pos, e.Name, len(f.Params), len(e.Args))
		}
		for i, a := range e.Args {
			ct, err := r.expr(a)
			if err != nil {
				return "", err
			}
			if err := r.assignable(category(f.Params[i].Type), ct, a.exprPos()); err != nil {
				return "", err
			}
		}
		if f.RetType == "" {
			return "void", nil
		}
		return category(f.RetType), nil
	case *MethodCall:
		t, err := r.typeOfVar(e.Recv.Name, e.Pos)
		if err != nil {
			return "", err
		}
		if category(t) != "object" {
			return "", fmt.Errorf("%s: method call on non-object %q", e.Pos, e.Recv.Name)
		}
		for _, a := range e.Args {
			if _, err := r.expr(a); err != nil {
				return "", err
			}
		}
		// Methods on objects are FSM events; they return int for flexibility.
		return "int", nil
	case *Binary:
		lc, err := r.expr(e.L)
		if err != nil {
			return "", err
		}
		rc, err := r.expr(e.R)
		if err != nil {
			return "", err
		}
		switch e.Op {
		case OpAdd, OpSub, OpMul:
			if lc != "int" || rc != "int" {
				return "", fmt.Errorf("%s: %s requires ints", e.Pos, e.Op)
			}
			return "int", nil
		case OpAnd, OpOr:
			if lc != "bool" || rc != "bool" {
				return "", fmt.Errorf("%s: %s requires bools", e.Pos, e.Op)
			}
			return "bool", nil
		case OpEq, OpNe:
			if lc == rc || lc == "null" || rc == "null" {
				return "bool", nil
			}
			return "", fmt.Errorf("%s: %s operands mismatch (%s vs %s)", e.Pos, e.Op, lc, rc)
		default: // <, <=, >, >=
			if lc != "int" || rc != "int" {
				return "", fmt.Errorf("%s: %s requires ints", e.Pos, e.Op)
			}
			return "bool", nil
		}
	case *Unary:
		ct, err := r.expr(e.X)
		if err != nil {
			return "", err
		}
		if e.Op == '!' {
			if ct != "bool" {
				return "", fmt.Errorf("%s: ! requires bool", e.Pos)
			}
			return "bool", nil
		}
		if ct != "int" {
			return "", fmt.Errorf("%s: unary - requires int", e.Pos)
		}
		return "int", nil
	}
	return "", fmt.Errorf("unknown expression %T", e)
}
