package lang

import (
	"strings"
	"testing"
)

var formatCorpus = []string{
	figure3b,
	`fun f(a: int, b: int): bool { return a + b * 2 < a - 1 && a > 0 || !(b == 3); }`,
	`
type R;
fun g(): R { var r: R = new R(); return r; }
fun main() {
  var x: R = g();
  var b: Box = new Box();
  b.f = x;
  var y: R = b.f;
  y.use(1, 2 + 3);
  while (input() > 0) {
    y.tick();
  }
  return;
}
type Box;`,
	`
type E;
fun main() {
  try {
    if (input() == 0 - 4) {
      throw new E();
    }
  } catch (e: E) {
    return;
  }
  return;
}`,
	`fun neg(x: int): int { return -x + -(x * 2); }`,
	`fun b(x: int) { var p: bool = !(x > 1) && (x < 5 || x != 2); if (p) { x = 0; } return; }`,
}

// TestFormatRoundTrip: format(parse(src)) re-parses to a structurally
// identical program (checked by formatting again and comparing text), and
// still resolves.
func TestFormatRoundTrip(t *testing.T) {
	for i, src := range formatCorpus {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("corpus %d: parse: %v", i, err)
		}
		text1 := Format(p1)
		p2, err := Parse(text1)
		if err != nil {
			t.Fatalf("corpus %d: reparse of\n%s\nfailed: %v", i, text1, err)
		}
		text2 := Format(p2)
		if text1 != text2 {
			t.Fatalf("corpus %d: format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", i, text1, text2)
		}
		if _, err := Resolve(p2); err != nil {
			t.Fatalf("corpus %d: formatted program does not resolve: %v", i, err)
		}
	}
}

func TestFormatPrecedenceMinimal(t *testing.T) {
	src := `fun f(a: int, b: int): int { return (a + b) * 2 - a * (b - 1); }`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	if !strings.Contains(out, "(a + b) * 2") {
		t.Fatalf("needed parens dropped:\n%s", out)
	}
	if !strings.Contains(out, "a * (b - 1)") {
		t.Fatalf("right-assoc parens dropped:\n%s", out)
	}
	if strings.Contains(out, "((") {
		t.Fatalf("redundant parens:\n%s", out)
	}
}

func TestFormatExprForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{`fun f() { var x: int = input(); x = x + 1; }`, "input()"},
		{`type R; fun f() { var r: R = null; if (r == null) { r = new R(); } }`, "r == null"},
		{`fun f() { var b: bool = true; if (!b) { b = false; } }`, "!b"},
	}
	for i, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if out := Format(p); !strings.Contains(out, tc.want) {
			t.Errorf("case %d: missing %q in\n%s", i, tc.want, out)
		}
	}
}
