package lang

import "fmt"

// Lexer tokenizes MiniLang source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case c >= '0' && c <= '9':
		start := l.off
		for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
		return Token{Kind: INT, Text: l.src[start:l.off], Pos: pos}, nil
	}
	l.advance()
	two := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: kindNames[k], Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		return Token{Kind: k, Text: kindNames[k], Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case ';':
		return one(Semi)
	case ':':
		return one(Colon)
	case ',':
		return one(Comma)
	case '.':
		return one(Dot)
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '*':
		return one(Star)
	case '=':
		if l.peek() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '!':
		if l.peek() == '=' {
			return two(NotEq)
		}
		return one(Not)
	case '<':
		if l.peek() == '=' {
			return two(LtEq)
		}
		return one(Lt)
	case '>':
		if l.peek() == '=' {
			return two(GtEq)
		}
		return one(Gt)
	case '&':
		if l.peek() == '&' {
			return two(AndAnd)
		}
	case '|':
		if l.peek() == '|' {
			return two(OrOr)
		}
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

// Tokenize scans all of src.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
