package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for MiniLang.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a MiniLang compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %s, found %s %q", t.Pos, k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	seen := map[string]Pos{}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KwType:
			pos := p.next().Pos
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			prog.Types = append(prog.Types, &TypeDecl{Name: name.Text, Pos: pos})
		case KwFun:
			f, err := p.parseFun()
			if err != nil {
				return nil, err
			}
			if prev, dup := seen[f.Name]; dup {
				return nil, fmt.Errorf("%s: function %q redeclared (first at %s)", f.Pos, f.Name, prev)
			}
			seen[f.Name] = f.Pos
			prog.Funs = append(prog.Funs, f)
		default:
			t := p.cur()
			return nil, fmt.Errorf("%s: expected 'fun' or 'type' at top level, found %s %q", t.Pos, t.Kind, t.Text)
		}
	}
	return prog, nil
}

func (p *Parser) parseFun() (*FunDecl, error) {
	pos := p.next().Pos // fun
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &FunDecl{Name: name.Text, Pos: pos}
	for p.cur().Kind != RParen {
		if len(f.Params) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		pt, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, Param{Name: pn.Text, Type: pt.Text})
	}
	p.next() // RParen
	if p.accept(Colon) {
		rt, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		f.RetType = rt.Text
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, fmt.Errorf("%s: unexpected end of file in block", p.cur().Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // RBrace
	return stmts, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case KwVar:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		typ, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(Assign) {
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.Text, Type: typ.Text, Init: init, Pos: t.Pos}, nil

	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(KwElse) {
			if p.cur().Kind == KwIf {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: t.Pos}, nil

	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil

	case KwReturn:
		p.next()
		var x Expr
		var err error
		if p.cur().Kind != Semi {
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: t.Pos}, nil

	case KwThrow:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ThrowStmt{X: x, Pos: t.Pos}, nil

	case KwTry:
		p.next()
		try, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwCatch); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cv, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		catchType := ""
		if p.accept(Colon) {
			ct, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			catchType = ct.Text
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		catch, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &TryStmt{Try: try, CatchVar: cv.Text, CatchType: catchType, Catch: catch, Pos: t.Pos}, nil

	case KwSpawn:
		p.next()
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		call, ok := x.(*CallExpr)
		if !ok {
			return nil, fmt.Errorf("%s: spawn requires a function call", t.Pos)
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &SpawnStmt{Call: call, Pos: t.Pos}, nil

	case IDENT:
		// assignment or expression statement
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if p.accept(Assign) {
			switch x.(type) {
			case *Ident, *FieldAccess:
			default:
				return nil, fmt.Errorf("%s: invalid assignment target", t.Pos)
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &AssignStmt{LHS: x, RHS: rhs, Pos: t.Pos}, nil
		}
		switch x.(type) {
		case *CallExpr, *MethodCall:
		default:
			return nil, fmt.Errorf("%s: expression statement must be a call", t.Pos)
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: t.Pos}, nil
	}
	return nil, fmt.Errorf("%s: unexpected token %s %q at start of statement", t.Pos, t.Kind, t.Text)
}

// Expression parsing with precedence climbing:
// or < and < comparison < additive < multiplicative < unary < primary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OrOr {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == AndAnd {
		pos := p.next().Pos
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r, Pos: pos}
	}
	return l, nil
}

var cmpOps = map[Kind]BinOp{
	EqEq: OpEq, NotEq: OpNe, Lt: OpLt, LtEq: OpLe, Gt: OpGt, GtEq: OpGe,
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		pos := p.next().Pos
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r, Pos: pos}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Plus || p.cur().Kind == Minus {
		op := OpAdd
		if p.cur().Kind == Minus {
			op = OpSub
		}
		pos := p.next().Pos
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Star {
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpMul, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Not:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: '!', X: x, Pos: pos}, nil
	case Minus:
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: '-', X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer literal %q", t.Pos, t.Text)
		}
		return &IntLit{Value: v, Pos: t.Pos}, nil
	case KwTrue:
		p.next()
		return &BoolLit{Value: true, Pos: t.Pos}, nil
	case KwFalse:
		p.next()
		return &BoolLit{Value: false, Pos: t.Pos}, nil
	case KwNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case KwInput:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &InputExpr{Pos: t.Pos}, nil
	case KwNew:
		p.next()
		typ, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &NewExpr{Type: typ.Text, Pos: t.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case IDENT:
		p.next()
		if p.accept(Dot) {
			member, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			recv := &Ident{Name: t.Text, Pos: t.Pos}
			if p.cur().Kind == LParen {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				return &MethodCall{Recv: recv, Method: member.Text, Args: args, Pos: t.Pos}, nil
			}
			return &FieldAccess{Recv: recv, Field: member.Text, Pos: t.Pos}, nil
		}
		if p.cur().Kind == LParen {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args, Pos: t.Pos}, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	}
	return nil, fmt.Errorf("%s: unexpected token %s %q in expression", t.Pos, t.Kind, t.Text)
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().Kind != RParen {
		if len(args) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.next() // RParen
	return args, nil
}
