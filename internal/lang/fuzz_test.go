package lang

import "testing"

// FuzzParse exercises the lexer/parser/resolver on arbitrary input: no
// panics, and anything that parses must format and re-parse cleanly.
// Run with: go test -fuzz=FuzzParse ./internal/lang
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"fun main() { return; }",
		"type T;\nfun f(x: int): int { return x + 1; }",
		`fun f() { var w: W = new W(); w.close(); }`,
		`fun f(n: int) { while (n > 0) { n = n - 1; } return; }`,
		`fun f() { try { throw new E(); } catch (e: E) { return; } }`,
		`fun f(a: int) { if (a > 0 && a < 10 || !(a == 5)) { a = 0; } }`,
		"fun f( {",
		"type ;;;",
		"fun f() { var x: int = 999999999999999999999999; }",
		"/* unterminated",
		"fun f() { x.y.z(); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if _, err := Resolve(prog); err != nil {
			return
		}
		// Parsed and resolved: the formatter must produce re-parseable text.
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("format broke parseability: %v\n%s", err, text)
		}
		if Format(prog2) != text {
			t.Fatalf("format not idempotent for:\n%s", src)
		}
	})
}
