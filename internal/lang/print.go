package lang

import (
	"fmt"
	"strings"
)

// Format pretty-prints a program as canonical MiniLang source. Formatting
// then re-parsing yields a structurally identical program (round-trip
// property), which makes Format usable for tooling and program emission.
func Format(p *Program) string {
	var b strings.Builder
	for _, t := range p.Types {
		fmt.Fprintf(&b, "type %s;\n", t.Name)
	}
	if len(p.Types) > 0 && len(p.Funs) > 0 {
		b.WriteByte('\n')
	}
	for i, f := range p.Funs {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatFun(&b, f)
	}
	return b.String()
}

func formatFun(b *strings.Builder, f *FunDecl) {
	fmt.Fprintf(b, "fun %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %s", p.Name, p.Type)
	}
	b.WriteString(")")
	if f.RetType != "" {
		fmt.Fprintf(b, ": %s", f.RetType)
	}
	b.WriteString(" {\n")
	formatStmts(b, f.Body, 1)
	b.WriteString("}\n")
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *VarDecl:
			fmt.Fprintf(b, "%svar %s: %s", ind, s.Name, s.Type)
			if s.Init != nil {
				fmt.Fprintf(b, " = %s", FormatExpr(s.Init))
			}
			b.WriteString(";\n")
		case *AssignStmt:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, FormatExpr(s.LHS), FormatExpr(s.RHS))
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, FormatExpr(s.X))
		case *SpawnStmt:
			fmt.Fprintf(b, "%sspawn %s;\n", ind, FormatExpr(s.Call))
		case *IfStmt:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, FormatExpr(s.Cond))
			formatStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				formatStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *WhileStmt:
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, FormatExpr(s.Cond))
			formatStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *ReturnStmt:
			if s.X == nil {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			} else {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, FormatExpr(s.X))
			}
		case *ThrowStmt:
			fmt.Fprintf(b, "%sthrow %s;\n", ind, FormatExpr(s.X))
		case *TryStmt:
			fmt.Fprintf(b, "%stry {\n", ind)
			formatStmts(b, s.Try, depth+1)
			if s.CatchType != "" {
				fmt.Fprintf(b, "%s} catch (%s: %s) {\n", ind, s.CatchVar, s.CatchType)
			} else {
				fmt.Fprintf(b, "%s} catch (%s) {\n", ind, s.CatchVar)
			}
			formatStmts(b, s.Catch, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		}
	}
}

// precedence levels for parenthesization (higher binds tighter).
func precOf(op BinOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	default: // OpMul
		return 5
	}
}

// FormatExpr renders an expression with minimal parentheses.
func FormatExpr(e Expr) string {
	return formatExprPrec(e, 0)
}

func formatExprPrec(e Expr, parent int) string {
	switch e := e.(type) {
	case *IntLit:
		if e.Value < 0 {
			s := fmt.Sprintf("(0 - %d)", -e.Value)
			return s
		}
		return fmt.Sprintf("%d", e.Value)
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *NullLit:
		return "null"
	case *Ident:
		return e.Name
	case *FieldAccess:
		return e.Recv.Name + "." + e.Field
	case *NewExpr:
		return "new " + e.Type + "()"
	case *InputExpr:
		return "input()"
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = formatExprPrec(a, 0)
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	case *MethodCall:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = formatExprPrec(a, 0)
		}
		return e.Recv.Name + "." + e.Method + "(" + strings.Join(args, ", ") + ")"
	case *Binary:
		p := precOf(e.Op)
		// Left-associative: the right operand needs parens at equal
		// precedence.
		s := formatExprPrec(e.L, p) + " " + e.Op.String() + " " + formatExprPrec(e.R, p+1)
		if p < parent {
			return "(" + s + ")"
		}
		return s
	case *Unary:
		inner := formatExprPrec(e.X, 6)
		if e.Op == '!' {
			return "!" + parenUnless(inner, isAtom(e.X))
		}
		return "-" + parenUnless(inner, isAtom(e.X))
	}
	return "?"
}

func isAtom(e Expr) bool {
	switch e.(type) {
	case *IntLit, *BoolLit, *NullLit, *Ident, *FieldAccess, *NewExpr,
		*InputExpr, *CallExpr, *MethodCall, *Unary:
		return true
	}
	return false
}

func parenUnless(s string, atom bool) string {
	if atom {
		return s
	}
	return "(" + s + ")"
}
