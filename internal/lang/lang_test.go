package lang

import (
	"strings"
	"testing"
)

// figure3b is the paper's Fig. 3b example transcribed into MiniLang.
const figure3b = `
type FileWriter;

fun main() {
  var out: FileWriter = null;
  var o: FileWriter = null;
  var x: int = input();
  var y: int = x;
  if (x >= 0) {
    out = new FileWriter();
    o = out;
    y = y - 1;
  } else {
    y = y + 1;
  }
  if (y > 0) {
    out.write();
    o.close();
  }
  return;
}
`

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("fun f(x: int) { x = x + 1; } // done")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KwFun, IDENT, LParen, IDENT, Colon, IDENT, RParen, LBrace,
		IDENT, Assign, IDENT, Plus, INT, Semi, RBrace, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("fun\n  main() {}")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("fun at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("main at %v", toks[1].Pos)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("/* block \n comment */ x // line\n y")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("unexpected tokens %+v", toks)
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Fatal("want error for unterminated comment")
	}
	if _, err := Tokenize("a @ b"); err == nil {
		t.Fatal("want error for bad character")
	}
}

func TestParseFigure3b(t *testing.T) {
	prog, err := Parse(figure3b)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Types) != 1 || prog.Types[0].Name != "FileWriter" {
		t.Fatalf("types: %+v", prog.Types)
	}
	main := prog.Fun("main")
	if main == nil {
		t.Fatal("main not found")
	}
	if len(main.Body) != 7 {
		t.Fatalf("main body has %d stmts, want 7", len(main.Body))
	}
	ifStmt, ok := main.Body[4].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 4 is %T, want *IfStmt", main.Body[4])
	}
	cond, ok := ifStmt.Cond.(*Binary)
	if !ok || cond.Op != OpGe {
		t.Fatalf("first conditional: %+v", ifStmt.Cond)
	}
	if len(ifStmt.Else) != 1 {
		t.Fatalf("else branch: %d stmts", len(ifStmt.Else))
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`fun f(a: int, b: int): bool { return a + b * 2 < a - 1 && a > 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funs[0].Body[0].(*ReturnStmt)
	and, ok := ret.X.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("top is %+v, want &&", ret.X)
	}
	lt := and.L.(*Binary)
	if lt.Op != OpLt {
		t.Fatalf("left of && is %v", lt.Op)
	}
	add := lt.L.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("lhs is %v, want +", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != OpMul {
		t.Fatalf("rhs of + is %v, want *", mul.Op)
	}
}

func TestParseTryCatchThrow(t *testing.T) {
	src := `
type IOError;
fun risky() {
  throw new IOError();
}
fun main() {
  try {
    risky();
  } catch (e: IOError) {
    return;
  }
  return;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := prog.Fun("main").Body[0].(*TryStmt)
	if !ok {
		t.Fatalf("want try, got %T", prog.Fun("main").Body[0])
	}
	if tr.CatchVar != "e" || tr.CatchType != "IOError" {
		t.Fatalf("catch clause: %q %q", tr.CatchVar, tr.CatchType)
	}
	if _, ok := prog.Fun("risky").Body[0].(*ThrowStmt); !ok {
		t.Fatal("want throw statement")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`fun f( { }`,
		`fun f() { var x int; }`,
		`fun f() { x = ; }`,
		`fun f() { 3 = x; }`,
		`fun f() { if x > 0 {} }`,
		`var x: int;`,
		`fun f() { return`,
		`fun dup() {} fun dup() {}`,
		`fun f() { x(); } fun f2() { f() }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestResolveFigure3b(t *testing.T) {
	prog, err := Parse(figure3b)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ObjectTypes["FileWriter"] {
		t.Fatal("FileWriter should be an object type")
	}
	vt := info.VarTypes[prog.Fun("main")]
	if vt["out"] != "FileWriter" || vt["x"] != "int" {
		t.Fatalf("var types: %+v", vt)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`fun f() { x = 1; }`, "undeclared"},
		{`fun f() { var x: int = 1; var x: int = 2; }`, "redeclared"},
		{`fun f() { var x: int = true; }`, "cannot assign"},
		{`fun f() { var x: int = 1; if (x) {} }`, "must be bool"},
		{`fun f() { var x: int = 1; x.m(); }`, "non-object"},
		{`fun f() { var x: int = 1; var y: Obj = x.fld; }`, "non-object"},
		{`fun f() { g(); }`, "undeclared function"},
		{`fun g(a: int) {} fun f() { g(); }`, "expects 1 args"},
		{`fun f() { return 3; }`, "returns no value"},
		{`fun f(): int { return; }`, "must return"},
		{`fun f() { var x: int = 0; throw x; }`, "requires an object"},
		{`fun f() { var b: bool = true; var x: int = b + 1; }`, "requires ints"},
		{`fun f() { var x: Obj = new Obj(); var b: bool = x && x; }`, "requires bools"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Errorf("parse error for %q: %v", tc.src, err)
			continue
		}
		_, err = Resolve(prog)
		if err == nil {
			t.Errorf("no resolve error for %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not contain %q", err, tc.want)
		}
	}
}

func TestResolveNullComparisons(t *testing.T) {
	src := `fun f() { var x: Obj = null; if (x == null) { x = new Obj(); } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(prog); err != nil {
		t.Fatal(err)
	}
}
