package lang

// Program is a parsed MiniLang compilation unit.
type Program struct {
	Types []*TypeDecl
	Funs  []*FunDecl
}

// Fun returns the declared function with the given name, or nil.
func (p *Program) Fun(name string) *FunDecl {
	for _, f := range p.Funs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// TypeDecl declares an object type of interest, e.g. "type FileWriter;".
// Object types may also be used without declaration; declarations exist so
// checkers can enumerate the types a source file mentions.
type TypeDecl struct {
	Name string
	Pos  Pos
}

// FunDecl is a function declaration.
type FunDecl struct {
	Name    string
	Params  []Param
	RetType string // "" for none, "int", "bool", or an object type
	Body    []Stmt
	Pos     Pos
}

// Param is a formal parameter.
type Param struct {
	Name string
	Type string
}

// Stmt is a MiniLang statement.
type Stmt interface{ stmtPos() Pos }

// VarDecl declares (and optionally initializes) a local variable.
type VarDecl struct {
	Name string
	Type string
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt assigns RHS to LHS; LHS is an *Ident or a *FieldAccess.
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// ExprStmt evaluates an expression for effect (a call or method call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// SpawnStmt runs a function call on a new concurrent task ("spawn f(x);",
// the MiniLang rendering of a Go `go` statement). The call's result, if
// any, is discarded; the callee body runs, in an unknown interleaving,
// after the statement.
type SpawnStmt struct {
	Call *CallExpr
	Pos  Pos
}

// IfStmt is a two-way branch; Else may be empty.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// WhileStmt is a loop; Grapple statically unrolls it (paper §3.1).
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X   Expr // may be nil
	Pos Pos
}

// ThrowStmt raises an exception object.
type ThrowStmt struct {
	X   Expr
	Pos Pos
}

// TryStmt guards Try with a handler. A catch with type "" handles any type.
type TryStmt struct {
	Try       []Stmt
	CatchVar  string
	CatchType string
	Catch     []Stmt
	Pos       Pos
}

func (s *VarDecl) stmtPos() Pos    { return s.Pos }
func (s *AssignStmt) stmtPos() Pos { return s.Pos }
func (s *ExprStmt) stmtPos() Pos   { return s.Pos }
func (s *SpawnStmt) stmtPos() Pos  { return s.Pos }
func (s *IfStmt) stmtPos() Pos     { return s.Pos }
func (s *WhileStmt) stmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos { return s.Pos }
func (s *ThrowStmt) stmtPos() Pos  { return s.Pos }
func (s *TryStmt) stmtPos() Pos    { return s.Pos }

// Expr is a MiniLang expression.
type Expr interface{ exprPos() Pos }

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Pos   Pos
}

// NullLit is the null object reference.
type NullLit struct{ Pos Pos }

// Ident references a variable.
type Ident struct {
	Name string
	Pos  Pos
}

// FieldAccess is a depth-one field read or (as an assignment target) write.
type FieldAccess struct {
	Recv  *Ident
	Field string
	Pos   Pos
}

// NewExpr allocates an object of an object type: "new FileWriter()".
type NewExpr struct {
	Type string
	Pos  Pos
}

// CallExpr invokes a declared function.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// MethodCall invokes a method on an object-typed variable. Calls on objects
// are the FSM events Grapple tracks (open, close, lock, ...).
type MethodCall struct {
	Recv   *Ident
	Method string
	Args   []Expr
	Pos    Pos
}

// InputExpr is an opaque integer input (environment, CLI, network, ...).
type InputExpr struct{ Pos Pos }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpEq: "==", OpNe: "!=",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpAnd: "&&", OpOr: "||",
}

func (o BinOp) String() string { return binOpNames[o] }

// IsComparison reports whether o yields a boolean from two ints.
func (o BinOp) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Binary applies Op to L and R.
type Binary struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// Unary is !x or -x.
type Unary struct {
	Op  byte // '!' or '-'
	X   Expr
	Pos Pos
}

func (e *IntLit) exprPos() Pos      { return e.Pos }
func (e *BoolLit) exprPos() Pos     { return e.Pos }
func (e *NullLit) exprPos() Pos     { return e.Pos }
func (e *Ident) exprPos() Pos       { return e.Pos }
func (e *FieldAccess) exprPos() Pos { return e.Pos }
func (e *NewExpr) exprPos() Pos     { return e.Pos }
func (e *CallExpr) exprPos() Pos    { return e.Pos }
func (e *MethodCall) exprPos() Pos  { return e.Pos }
func (e *InputExpr) exprPos() Pos   { return e.Pos }
func (e *Binary) exprPos() Pos      { return e.Pos }
func (e *Unary) exprPos() Pos       { return e.Pos }

// PosOf returns the source position of an expression.
func PosOf(e Expr) Pos { return e.exprPos() }

// PosOfStmt returns the source position of a statement.
func PosOfStmt(s Stmt) Pos { return s.stmtPos() }

// IsObjectType reports whether a type name denotes an object type.
func IsObjectType(name string) bool {
	return name != "" && name != "int" && name != "bool"
}
