// Package lang implements the MiniLang frontend: a Java-like imperative
// mini-language that stands in for the paper's Soot-based Java frontend
// (DESIGN.md §1). MiniLang provides exactly the constructs the Grapple
// analyses consume: object allocation, assignment, field stores/loads,
// calls, integer/boolean expressions, structured control flow, and
// exceptions.
package lang

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	// keywords
	KwFun
	KwVar
	KwIf
	KwElse
	KwWhile
	KwReturn
	KwNew
	KwNull
	KwTrue
	KwFalse
	KwTry
	KwCatch
	KwThrow
	KwType
	KwInput
	KwSpawn
	// punctuation & operators
	LParen
	RParen
	LBrace
	RBrace
	Semi
	Colon
	Comma
	Dot
	Assign
	Plus
	Minus
	Star
	Not
	AndAnd
	OrOr
	EqEq
	NotEq
	Lt
	LtEq
	Gt
	GtEq
)

var kindNames = map[Kind]string{
	EOF: "eof", IDENT: "identifier", INT: "int literal",
	KwFun: "fun", KwVar: "var", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwReturn: "return", KwNew: "new", KwNull: "null", KwTrue: "true",
	KwFalse: "false", KwTry: "try", KwCatch: "catch", KwThrow: "throw",
	KwType: "type", KwInput: "input", KwSpawn: "spawn",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", Semi: ";",
	Colon: ":", Comma: ",", Dot: ".", Assign: "=", Plus: "+", Minus: "-",
	Star: "*", Not: "!", AndAnd: "&&", OrOr: "||", EqEq: "==", NotEq: "!=",
	Lt: "<", LtEq: "<=", Gt: ">", GtEq: ">=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", k)
}

var keywords = map[string]Kind{
	"fun": KwFun, "var": KwVar, "if": KwIf, "else": KwElse, "while": KwWhile,
	"return": KwReturn, "new": KwNew, "null": KwNull, "true": KwTrue,
	"false": KwFalse, "try": KwTry, "catch": KwCatch, "throw": KwThrow,
	"type": KwType, "input": KwInput, "spawn": KwSpawn,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier name or literal text
	Pos  Pos
}
