package scheduler

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/storage"
)

func resumeInstances(t *testing.T) []Instance {
	t.Helper()
	return Expand(miniSubjects(t), GroupPerFSM(fsm.Builtins()), checker.Options{})
}

func countResumed(res *BatchResult) int {
	n := 0
	for _, ir := range res.Instances {
		if ir.Resumed {
			n++
		}
	}
	return n
}

// TestBatchResumeAtEveryInstanceBoundary kills the batch after each k-th
// instance completion (the completion record is durable before the kill
// fires), resumes, and requires the merged report stream byte-identical to
// an uninterrupted run — with exactly the k finished instances skipped.
// Runs under -race via the Makefile race target and -shuffle=on via test.
func TestBatchResumeAtEveryInstanceBoundary(t *testing.T) {
	instances := resumeInstances(t)

	refDir := t.TempDir()
	ref, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: refDir, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref.Reports)
	if len(ref.Reports) == 0 {
		t.Fatal("expected warnings from seeded subjects")
	}
	if countResumed(ref) != 0 {
		t.Fatal("fresh journaled run claims resumed instances")
	}

	for k := 1; k < len(instances); k++ {
		dir := t.TempDir()
		faults := faultpoint.New()
		faults.Arm(faultpoint.SchedulerInstance, k)
		// Workers: 1 makes "k completions then crash" deterministic.
		_, err := Run(context.Background(), instances, Options{
			Workers: 1, WorkDir: dir, Journal: true, Faults: faults,
		})
		if !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("k=%d: kill did not fire: %v", k, err)
		}
		res, err := Run(context.Background(), instances, Options{
			Workers: 2, WorkDir: dir, Resume: true,
		})
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got := countResumed(res); got != k {
			t.Fatalf("k=%d: resumed %d instances", k, got)
		}
		if got := reportBytes(t, res.Reports); !bytes.Equal(got, want) {
			t.Fatalf("k=%d: resumed merged reports differ", k)
		}
	}
}

// TestBatchResumeCompletedRun resumes a fully finished batch: every instance
// is restored from the log, nothing reruns, and the stream is identical.
func TestBatchResumeCompletedRun(t *testing.T) {
	instances := resumeInstances(t)
	dir := t.TempDir()
	ref, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: dir, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := countResumed(res); got != len(instances) {
		t.Fatalf("resumed %d of %d instances", got, len(instances))
	}
	if !bytes.Equal(reportBytes(t, res.Reports), reportBytes(t, ref.Reports)) {
		t.Fatal("resumed merged reports differ")
	}
}

// TestBatchResumeAfterTimeouts: deadline-killed instances are recorded
// failed, not complete, so a resume without the deadline reruns exactly
// those and completes the batch.
func TestBatchResumeAfterTimeouts(t *testing.T) {
	instances := resumeInstances(t)

	cold, err := Run(context.Background(), instances, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, cold.Reports)

	dir := t.TempDir()
	strangled, err := Run(context.Background(), instances, Options{
		Workers: 2, WorkDir: dir, Journal: true, Timeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(strangled.Failed()) == 0 {
		t.Skip("nothing timed out under a 1ns deadline; nothing to resume")
	}
	res, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed()) != 0 {
		t.Fatalf("resume left failures: %v", res.Failed())
	}
	if !bytes.Equal(reportBytes(t, res.Reports), want) {
		t.Fatal("resumed merged reports differ from cold run")
	}
}

func TestBatchResumeMissingLog(t *testing.T) {
	_, err := Run(context.Background(), resumeInstances(t), Options{
		Workers: 2, WorkDir: t.TempDir(), Resume: true,
	})
	if !errors.Is(err, storage.ErrNoJournal) {
		t.Fatalf("resume of an empty workdir: %v", err)
	}
}

func TestBatchJournalRequiresWorkDir(t *testing.T) {
	if _, err := Run(context.Background(), resumeInstances(t), Options{Journal: true}); err == nil {
		t.Fatal("Journal without WorkDir accepted")
	}
	if _, err := Run(context.Background(), resumeInstances(t), Options{Resume: true}); err == nil {
		t.Fatal("Resume without WorkDir accepted")
	}
}

// TestBatchResumeLogDamage: a torn final line (the crash landing mid-append)
// is dropped and that instance reruns; garbage anywhere earlier is corruption
// and resume refuses.
func TestBatchResumeLogDamage(t *testing.T) {
	instances := resumeInstances(t)
	dir := t.TempDir()
	ref, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: dir, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref.Reports)
	path := filepath.Join(dir, CompletionLogName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("torn final line reruns that instance", func(t *testing.T) {
		torn := pristine[:len(pristine)-7] // mid-way through the last record
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: dir, Resume: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := countResumed(res); got != len(instances)-1 {
			t.Fatalf("resumed %d instances, want %d", got, len(instances)-1)
		}
		if !bytes.Equal(reportBytes(t, res.Reports), want) {
			t.Fatal("merged reports differ after torn-line recovery")
		}
	})

	t.Run("garbage mid-log refuses resume", func(t *testing.T) {
		lines := bytes.SplitAfter(pristine, []byte("\n"))
		if len(lines) < 3 {
			t.Fatalf("log too short to mangle: %d lines", len(lines))
		}
		mangled := append([]byte(nil), lines[0]...)
		mangled = append(mangled, []byte("{definitely not json\n")...)
		for _, l := range lines[2:] {
			mangled = append(mangled, l...)
		}
		if err := os.WriteFile(path, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Run(context.Background(), instances, Options{Workers: 2, WorkDir: dir, Resume: true})
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("resume over a mangled log: %v", err)
		}
	})
}
