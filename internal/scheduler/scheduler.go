// Package scheduler is the batch driver of the paper's §5 methodology:
// instead of one Grapple run per invocation, it fans a set of independent
// checking instances — the cross product of subjects (compilation units) ×
// FSM property groups — across a bounded worker pool. Each instance is a
// complete three-phase pipeline run (alias closure, dataflow closure, FSM
// checking) and is independently decidable, so instances never communicate;
// what they *share* is read-only: the SMT constraint-memoization cache
// (§4.3), which amortizes solver work across instances, and the prepared
// frontend + alias closure of each subject (checker.Prepared) — the alias
// phase of one subject is the same no matter which property group is being
// checked, so only the first instance of a subject computes it and the rest
// start at phase 2.
//
// The scheduler guarantees a deterministic merged report stream: results
// are keyed by (subject, group) and the merge is a total order over report
// fields, so the output is byte-identical regardless of worker count,
// submission order, or goroutine scheduling.
package scheduler

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/trace"
)

// Subject is one named compilation unit.
type Subject struct {
	Name   string
	Source string
}

// Group is one FSM property group; instances check one group at a time.
type Group struct {
	Name string
	FSMs []*fsm.FSM
}

// GroupPerFSM splits properties into singleton groups — the paper's
// configuration: one checking instance per (property, source) pair.
func GroupPerFSM(fsms []*fsm.FSM) []Group {
	out := make([]Group, len(fsms))
	for i, f := range fsms {
		out[i] = Group{Name: f.Name, FSMs: []*fsm.FSM{f}}
	}
	return out
}

// OneGroup bundles every property into a single group, so each subject is
// checked exactly once against all FSMs (the single-run behaviour).
func OneGroup(fsms []*fsm.FSM) []Group {
	if len(fsms) == 0 {
		return nil
	}
	names := make([]string, len(fsms))
	for i, f := range fsms {
		names[i] = f.Name
	}
	return []Group{{Name: strings.Join(names, "+"), FSMs: fsms}}
}

// Instance is one independently-checkable (subject, property group) unit.
type Instance struct {
	Subject string
	Group   string
	Source  string
	FSMs    []*fsm.FSM
	// Opts configures this instance's checker. Engine.Cache is overwritten
	// with the batch's shared cache when one is in use.
	Opts checker.Options
}

// Key is the instance's stable identity; merge order depends only on it.
func (in *Instance) Key() string { return in.Subject + "\x00" + in.Group }

// Expand builds the instance set subjects × groups.
func Expand(subjects []Subject, groups []Group, opts checker.Options) []Instance {
	var out []Instance
	for _, s := range subjects {
		for _, g := range groups {
			out = append(out, Instance{
				Subject: s.Name, Group: g.Name,
				Source: s.Source, FSMs: g.FSMs, Opts: opts,
			})
		}
	}
	return out
}

// InstanceResult is one instance's outcome.
type InstanceResult struct {
	Subject string
	Group   string
	// Result is nil when Err is set.
	Result *checker.Result
	Err    error
	// TimedOut marks Err as the per-instance deadline expiring.
	TimedOut bool
	// Resumed marks a result restored from a previous run's completion log
	// (Options.Resume) rather than recomputed; only Reports, Elapsed and the
	// key survive the round trip, so Result carries no phase stats.
	Resumed bool
	// Wait is the time spent in the ready queue; Elapsed the run itself.
	Wait    time.Duration
	Elapsed time.Duration
}

// Report is one warning annotated with the subject and property group that
// produced it.
type Report struct {
	Subject string
	Group   string
	checker.Report
}

// Options configures a batch run.
type Options struct {
	// Workers bounds pool concurrency (default GOMAXPROCS, capped at the
	// instance count).
	Workers int
	// Timeout bounds each instance (0 = none); an expired instance is
	// recorded as failed with TimedOut set, and the batch continues.
	Timeout time.Duration
	// Cache is the SMT memo cache shared by every instance; one is created
	// when nil (unless CacheSize is negative, which runs instances with
	// their own private per-engine caches — the unshared baseline). The
	// created cache's capacity scales with the number of distinct subjects
	// so that a big batch does not thrash a single-subject-sized LRU.
	Cache     *smt.Cache
	CacheSize int
	// NoSharedFrontend disables per-subject sharing of the prepared
	// frontend + alias closure (checker.Prepared); every instance then runs
	// the full three-phase pipeline itself, as an independent process
	// would. Sharing is also off in the unshared-cache baseline
	// (CacheSize < 0 with a nil Cache).
	NoSharedFrontend bool
	// WorkDir, when non-empty, hosts one partition subdirectory per
	// instance; each instance otherwise uses its own temp dir.
	WorkDir string
	// Journal persists a completion record (key, reports, elapsed) to
	// WorkDir after each successful instance, so a later run with Resume
	// skips the finished ones. Requires WorkDir.
	Journal bool
	// Resume loads a previous journaled batch's completion log from WorkDir
	// and re-runs only the instances not recorded complete; restored and
	// recomputed results merge into a byte-identical report stream. A
	// missing log is an error wrapping storage.ErrNoJournal and a mangled
	// one wraps storage.ErrCorrupt (a torn final line — the crash landing
	// mid-append — is the one tolerated damage: that instance just reruns).
	// Implies Journal.
	Resume bool
	// Faults injects deterministic crash points after instance completions
	// (crash-injection tests only).
	Faults *faultpoint.Set
	// Trace, when non-nil, records one span per instance on a per-worker
	// thread lane and is threaded into each instance's checker (and engines).
	// Observation only: the merged report stream is unaffected.
	Trace *trace.Recorder
	// Progress, when non-nil, tracks batch completion (instances started,
	// done, still running) for the heartbeat and status.json machinery.
	Progress *trace.Progress
}

// BatchResult is a batch run's outcome.
type BatchResult struct {
	// Instances is sorted by (Subject, Group).
	Instances []InstanceResult
	// Reports is the deterministic merged stream, totally ordered by
	// (Subject, Line, Col, FSM, Kind, Object, Type, Group).
	Reports []Report
	// Sched is the scheduler's queue-depth/latency counters.
	Sched metrics.SchedSnapshot
	// CacheLookups/CacheHits/CacheHitRate describe the shared cache (zero
	// when instances ran with private caches).
	CacheLookups int64
	CacheHits    int64
	CacheHitRate float64
	// FrontendPrepares is how many frontend + alias-closure artifacts were
	// actually computed; with sharing on this is the distinct-subject
	// count, not the instance count.
	FrontendPrepares int
	// Wall is the batch's wall-clock time.
	Wall time.Duration
}

// Failed returns the results of instances that did not finish cleanly.
func (b *BatchResult) Failed() []InstanceResult {
	var out []InstanceResult
	for _, ir := range b.Instances {
		if ir.Err != nil {
			out = append(out, ir)
		}
	}
	return out
}

// Run checks every instance under a bounded worker pool and merges the
// per-instance results deterministically. Instance failures (including
// per-instance timeouts) do not fail the batch; they are reported on the
// corresponding InstanceResult. Run itself errors only on invalid input —
// duplicate (subject, group) keys, which would make the merge ambiguous —
// or when ctx is canceled before all instances finish.
func Run(ctx context.Context, instances []Instance, opts Options) (*BatchResult, error) {
	start := time.Now()
	seen := make(map[string]bool, len(instances))
	for i := range instances {
		k := instances[i].Key()
		if seen[k] {
			return nil, fmt.Errorf("scheduler: duplicate instance %q/%q", instances[i].Subject, instances[i].Group)
		}
		seen[k] = true
	}
	if (opts.Journal || opts.Resume) && opts.WorkDir == "" {
		return nil, fmt.Errorf("scheduler: Journal/Resume require a persistent WorkDir")
	}
	var clog *completionLog
	var done map[string]*completionRecord
	if opts.Journal || opts.Resume {
		var err error
		clog, done, err = openCompletionLog(opts.WorkDir, opts.Resume)
		if err != nil {
			return nil, err
		}
		defer clog.close()
	}
	pending := 0
	for i := range instances {
		if done[instances[i].Key()] == nil {
			pending++
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > pending {
		workers = pending
	}
	cache := opts.Cache
	if cache == nil && opts.CacheSize >= 0 {
		size := opts.CacheSize
		if size == 0 {
			subjects := make(map[string]bool, len(instances))
			for i := range instances {
				subjects[instances[i].Subject] = true
			}
			// One default-cache's worth of entries per distinct subject,
			// bounded; a subject's instances share a namespace, so capacity
			// must grow with the subject count or eviction churn erases the
			// cross-instance hits sharing exists for.
			size = len(subjects) * (1 << 16)
			if size > 1<<21 {
				size = 1 << 21
			}
		}
		cache = smt.NewCache(size)
	}
	var preps *prepStore
	if cache != nil && !opts.NoSharedFrontend {
		preps = &prepStore{entries: map[string]*prepEntry{}}
	}

	stats := &metrics.SchedStats{}
	type job struct {
		idx int
		enq time.Time
	}
	// Crash injection cancels in-flight work through a batch-local context so
	// the parent ctx (and its error contract) is untouched.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var injectMu sync.Mutex
	var injected error
	opts.Progress.SetBatch(pending)
	jobs := make(chan job, len(instances))
	results := make([]InstanceResult, len(instances))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// One trace lane per worker, so instance spans of concurrent workers
		// render as parallel tracks instead of overlapping on one line.
		tid := opts.Trace.Thread(fmt.Sprintf("worker-%02d", w))
		go func() {
			defer wg.Done()
			for jb := range jobs {
				wait := time.Since(jb.enq)
				stats.Dequeue(wait)
				opts.Progress.InstanceStart()
				sp := opts.Trace.Start(tid, "scheduler", "instance")
				r := runOne(runCtx, &instances[jb.idx], opts, cache, preps, stats, tid)
				sp.End(trace.Args{
					"subject": r.Subject, "group": r.Group,
					"waitUs": wait.Microseconds(), "ok": r.Err == nil,
				})
				opts.Progress.InstanceDone()
				if r.Err == nil && clog != nil {
					if err := clog.append(&completionRecord{
						Subject: r.Subject, Group: r.Group,
						Elapsed: r.Elapsed, Reports: r.Result.Reports,
					}); err != nil {
						r.Err = fmt.Errorf("completion log: %w", err)
					}
				}
				r.Wait = wait
				results[jb.idx] = r
				// The kill switch fires after the completion record is
				// durable — the crash a real batch can hit between instances.
				if err := opts.Faults.Hit(faultpoint.SchedulerInstance); err != nil {
					injectMu.Lock()
					if injected == nil {
						injected = err
					}
					injectMu.Unlock()
					cancelRun()
				}
			}
		}()
	}
	for i := range instances {
		if rec := done[instances[i].Key()]; rec != nil {
			// Finished by a previous run: restore the logged outcome and skip
			// the worker pool entirely.
			results[i] = InstanceResult{
				Subject: instances[i].Subject, Group: instances[i].Group,
				Result:  &checker.Result{Reports: rec.Reports},
				Elapsed: rec.Elapsed, Resumed: true,
			}
			continue
		}
		stats.Enqueue()
		jobs <- job{idx: i, enq: time.Now()}
	}
	close(jobs)
	wg.Wait()
	injectMu.Lock()
	injErr := injected
	injectMu.Unlock()
	if injErr != nil {
		return nil, injErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sort.Slice(results, func(i, j int) bool {
		if results[i].Subject != results[j].Subject {
			return results[i].Subject < results[j].Subject
		}
		return results[i].Group < results[j].Group
	})
	out := &BatchResult{
		Instances: results,
		Reports:   mergeReports(results),
		Sched:     stats.Snapshot(),
		Wall:      time.Since(start),
	}
	if cache != nil {
		out.CacheLookups = cache.Lookups()
		out.CacheHits = cache.Hits()
		out.CacheHitRate = cache.HitRate()
	}
	if preps != nil {
		out.FrontendPrepares = len(preps.entries)
	} else {
		out.FrontendPrepares = len(instances)
	}
	return out, nil
}

// CompletionLogName is the batch completion log's file name under
// Options.WorkDir: one JSON line per successfully finished instance,
// fsynced as it is appended, read back by Options.Resume.
const CompletionLogName = "batch.completed.jsonl"

// completionRecord is one logged instance outcome. Reports are persisted in
// full so a resumed batch reproduces the merged stream byte-for-byte without
// re-checking the instance.
type completionRecord struct {
	Subject string           `json:"subject"`
	Group   string           `json:"group"`
	Elapsed time.Duration    `json:"elapsedNs"`
	Reports []checker.Report `json:"reports,omitempty"`
}

// completionLog appends completion records durably; safe for concurrent use
// by the worker pool.
type completionLog struct {
	mu sync.Mutex
	f  *os.File
}

func (cl *completionLog) append(rec *completionRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if _, err := cl.f.Write(line); err != nil {
		return err
	}
	return cl.f.Sync()
}

func (cl *completionLog) close() error { return cl.f.Close() }

// openCompletionLog opens dir's completion log for appending and, when
// resuming, returns the records of a previous run. A fresh (non-resume)
// batch truncates any stale log first, so old completions can never satisfy
// a later Resume of a different batch by accident. On resume, a torn final
// line is dropped (the crash landed mid-append; that instance reruns) and
// the file is truncated back to the valid prefix; damage anywhere else is a
// corrupt-log error.
func openCompletionLog(dir string, resume bool) (*completionLog, map[string]*completionRecord, error) {
	path := filepath.Join(dir, CompletionLogName)
	done := map[string]*completionRecord{}
	validLen := int64(0)
	needNL := false // last line parsed but lost its newline to a torn write
	if resume {
		data, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, fmt.Errorf("scheduler: resume: %s: %w (run with Journal first, or drop Resume to start cold)", path, storage.ErrNoJournal)
		}
		if err != nil {
			return nil, nil, err
		}
		for off := 0; off < len(data); {
			nl := bytes.IndexByte(data[off:], '\n')
			end := len(data)
			last := nl < 0
			if !last {
				end = off + nl
			}
			line := bytes.TrimSpace(data[off:end])
			if len(line) > 0 {
				rec := &completionRecord{}
				if err := json.Unmarshal(line, rec); err != nil {
					if last {
						break // torn final append: rerun that instance
					}
					return nil, nil, fmt.Errorf("scheduler: resume: %s: line at byte %d: %v: %w", path, off, err, storage.ErrCorrupt)
				}
				done[rec.Subject+"\x00"+rec.Group] = rec
				if last {
					needNL = true
				}
			}
			if last {
				validLen = int64(len(data))
				break
			}
			off = end + 1
			validLen = int64(off)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(validLen, 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if needNL {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
		return &completionLog{f: f}, done, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return &completionLog{f: f}, done, nil
}

// prepStore lazily builds and shares one checker.Prepared per compilation
// unit. The entry mutex serializes same-subject prepares (the second
// claimant waits and reuses rather than duplicating the alias fixpoint);
// distinct subjects prepare concurrently. Errors are not memoized: if the
// building instance's deadline expires mid-prepare, the next instance of
// that subject retries under its own deadline.
type prepStore struct {
	mu      sync.Mutex
	entries map[string]*prepEntry
}

type prepEntry struct {
	mu   sync.Mutex
	prep *checker.Prepared
}

func (ps *prepStore) get(ctx context.Context, source string, copts checker.Options) (*checker.Prepared, error) {
	key := sourceKey(source)
	ps.mu.Lock()
	e := ps.entries[key]
	if e == nil {
		e = &prepEntry{}
		ps.entries[key] = e
	}
	ps.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prep != nil {
		return e.prep, nil
	}
	prep, err := checker.New(nil, copts).PrepareSource(ctx, source)
	if err != nil {
		return nil, err
	}
	e.prep = prep
	return prep, nil
}

// runOne executes a single instance under its per-instance deadline. tid is
// the worker's trace lane; the instance's checker (and engines) emit onto it.
func runOne(ctx context.Context, in *Instance, opts Options, cache *smt.Cache, preps *prepStore, stats *metrics.SchedStats, tid uint64) InstanceResult {
	res := InstanceResult{Subject: in.Subject, Group: in.Group}
	ictx := ctx
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ictx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	copts := in.Opts
	// The batch contract is byte-identical merged reports for any worker
	// count or sharing mode. Property-relevance slicing is property-directed:
	// a sliced CFET differs per FSM group, which would defeat per-subject
	// frontend sharing and perturb witness encodings between sharing modes,
	// so batch instances always build full CFETs.
	copts.Slice = checker.SliceOff
	// Thread the batch's recorder into the instance on this worker's lane.
	// The batch-level Progress is NOT passed down: concurrent instances would
	// fight over the phase field; batch progress tracks instance lifecycles.
	copts.Trace = opts.Trace
	copts.TraceTID = tid
	copts.Progress = nil
	if cache != nil {
		copts.Engine.Cache = cache
		// Encoded-path memo keys are positional within one compilation
		// unit; namespace by source content so instances of the same
		// subject share entries while different subjects never collide.
		copts.Engine.CacheKeyPrefix = sourceKey(in.Source)
	}
	if opts.WorkDir != "" && copts.WorkDir == "" {
		copts.WorkDir = filepath.Join(opts.WorkDir, pathSafe(in.Subject)+"--"+pathSafe(in.Group))
	}
	start := time.Now()
	c := checker.New(in.FSMs, copts)
	var r *checker.Result
	var err error
	if preps != nil {
		// Share the frontend + alias closure across this subject's property
		// groups: Prepared is immutable, so only the first instance pays
		// for it and the rest start at phase 2.
		var prep *checker.Prepared
		prep, err = preps.get(ictx, in.Source, copts)
		if err == nil {
			r, err = c.CheckPrepared(ictx, prep)
		}
	} else {
		r, err = c.CheckSourceContext(ictx, in.Source)
	}
	res.Elapsed = time.Since(start)
	res.Result, res.Err = r, err
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		res.TimedOut = true
	}
	stats.Done(res.Elapsed, err == nil)
	return res
}

// sourceKey derives the cache-key namespace for a compilation unit: the
// FNV-64a of its source, as 8 raw bytes.
func sourceKey(src string) string {
	h := fnv.New64a()
	h.Write([]byte(src))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], h.Sum64())
	return string(buf[:])
}

// pathSafe makes a key component usable as a directory name.
func pathSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', '*', '?', '"', '<', '>', '|', 0:
			return '_'
		}
		return r
	}, s)
}

// mergeReports flattens per-instance reports into one totally-ordered
// stream. Instances are already key-sorted; the final order depends only on
// report content plus the (subject, group) key, never on completion order.
func mergeReports(results []InstanceResult) []Report {
	var merged []Report
	for i := range results {
		ir := &results[i]
		if ir.Result == nil {
			continue
		}
		for _, r := range ir.Result.Reports {
			merged = append(merged, Report{Subject: ir.Subject, Group: ir.Group, Report: r})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.FSM != b.FSM {
			return a.FSM < b.FSM
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Group < b.Group
	})
	return merged
}
