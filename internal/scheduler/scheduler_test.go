package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/workload"
)

// miniSubjects returns a couple of small distinct subjects.
func miniSubjects(t *testing.T) []Subject {
	t.Helper()
	mini := workload.Generate(workload.MiniProfile())
	second := workload.MiniProfile()
	second.Name = "mini-b"
	second.Seed = 43
	second.IOTP, second.SockTP = 1, 1
	b := workload.Generate(second)
	return []Subject{
		{Name: mini.Name, Source: mini.Source},
		{Name: b.Name, Source: b.Source},
	}
}

// reportBytes renders a merged stream canonically for byte comparison.
func reportBytes(t *testing.T, reports []Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range reports {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func runBatch(t *testing.T, instances []Instance, workers int) *BatchResult {
	t.Helper()
	res, err := Run(context.Background(), instances, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for _, ir := range res.Instances {
		if ir.Err != nil {
			t.Fatalf("instance %s/%s: %v", ir.Subject, ir.Group, ir.Err)
		}
	}
	return res
}

// TestDeterministicAcrossWorkersAndOrder is the batch determinism property:
// the merged report stream is byte-identical for workers=1 vs workers=N and
// for shuffled submission order. Run under -race by the Makefile ci target.
func TestDeterministicAcrossWorkersAndOrder(t *testing.T) {
	subjects := miniSubjects(t)
	groups := GroupPerFSM(fsm.Builtins())
	instances := Expand(subjects, groups, checker.Options{})

	base := runBatch(t, instances, 1)
	want := reportBytes(t, base.Reports)
	if len(base.Reports) == 0 {
		t.Fatal("expected warnings from seeded subjects")
	}

	for _, workers := range []int{2, 4, 8} {
		got := reportBytes(t, runBatch(t, instances, workers).Reports)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: merged reports differ from workers=1", workers)
		}
	}

	for trial := 0; trial < 3; trial++ {
		shuffled := append([]Instance(nil), instances...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := reportBytes(t, runBatch(t, shuffled, 4).Reports)
		if !bytes.Equal(got, want) {
			t.Fatalf("shuffle trial %d: merged reports differ", trial)
		}
	}
}

// TestSplitEqualsCombined: checking one property per instance merges to the
// same warning *sites* as checking every property in one instance. The
// comparison is at (subject, position, FSM, kind) granularity: the listed
// non-accepting exit states can legitimately differ between granularities,
// because the combined dataflow graph carries every property's tracked
// objects at once and its per-endpoint constraint-variant bookkeeping keeps
// different (equally sound) representatives.
func TestSplitEqualsCombined(t *testing.T) {
	subjects := miniSubjects(t)

	split := runBatch(t, Expand(subjects, GroupPerFSM(fsm.Builtins()), checker.Options{}), 4)
	combined := runBatch(t, Expand(subjects, OneGroup(fsm.Builtins()), checker.Options{}), 2)

	strip := func(rs []Report) []string {
		var out []string
		for _, r := range rs {
			out = append(out, fmt.Sprintf("%s|%d:%d|%s|%s|%s",
				r.Subject, r.Pos.Line, r.Pos.Col, r.FSM, r.Kind, r.Type))
		}
		return out
	}
	a, b := strip(split.Reports), strip(combined.Reports)
	if len(a) != len(b) {
		t.Fatalf("split %d reports, combined %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs:\n split:    %s\n combined: %s", i, a[i], b[i])
		}
	}
}

// TestSharedCacheAcrossInstances: a shared cache must see cross-instance
// hits — the alias phase of a subject poses identical constraints in every
// property group, so the 2nd..Nth instances of the same subject hit what
// the first one filled in.
func TestSharedCacheAcrossInstances(t *testing.T) {
	mini := workload.Generate(workload.MiniProfile())
	subjects := []Subject{{Name: mini.Name, Source: mini.Source}}
	instances := Expand(subjects, GroupPerFSM(fsm.Builtins()), checker.Options{})

	shared, err := Run(context.Background(), instances, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if shared.CacheLookups == 0 {
		t.Fatal("shared cache saw no lookups")
	}

	private, err := Run(context.Background(), instances, Options{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if private.CacheLookups != 0 {
		t.Fatalf("private-cache run reported shared lookups: %d", private.CacheLookups)
	}
	// Per-instance engine stats: with sharing, later instances hit more.
	var sharedHits, privateHits int64
	for _, ir := range shared.Instances {
		sharedHits += ir.Result.Alias.CacheHits + ir.Result.Dataflow.CacheHits
	}
	for _, ir := range private.Instances {
		privateHits += ir.Result.Alias.CacheHits + ir.Result.Dataflow.CacheHits
	}
	if sharedHits <= privateHits {
		t.Fatalf("sharing produced no extra hits: shared %d <= private %d", sharedHits, privateHits)
	}
	// And identical reports either way (memoization must not change verdicts).
	if !bytes.Equal(reportBytes(t, shared.Reports), reportBytes(t, private.Reports)) {
		t.Fatal("shared vs private cache changed the merged reports")
	}
}

// TestFrontendSharing: with the default shared mode, the frontend + alias
// closure is computed once per distinct subject, not once per instance —
// and turning sharing off restores the one-prepare-per-instance behaviour
// with the same merged reports.
func TestFrontendSharing(t *testing.T) {
	subjects := miniSubjects(t)
	instances := Expand(subjects, GroupPerFSM(fsm.Builtins()), checker.Options{})

	shared := runBatch(t, instances, 4)
	if shared.FrontendPrepares != len(subjects) {
		t.Fatalf("prepares = %d, want one per subject (%d)", shared.FrontendPrepares, len(subjects))
	}

	unshared, err := Run(context.Background(), instances, Options{Workers: 4, NoSharedFrontend: true})
	if err != nil {
		t.Fatal(err)
	}
	if unshared.FrontendPrepares != len(instances) {
		t.Fatalf("unshared prepares = %d, want one per instance (%d)", unshared.FrontendPrepares, len(instances))
	}
	if !bytes.Equal(reportBytes(t, shared.Reports), reportBytes(t, unshared.Reports)) {
		t.Fatal("frontend sharing changed the merged reports")
	}
}

// TestInstanceTimeout: an absurdly small per-instance deadline fails that
// instance but not the batch.
func TestInstanceTimeout(t *testing.T) {
	mini := workload.Generate(workload.MiniProfile())
	instances := Expand(
		[]Subject{{Name: mini.Name, Source: mini.Source}},
		OneGroup(fsm.Builtins()), checker.Options{})
	res, err := Run(context.Background(), instances, Options{Workers: 1, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	failed := res.Failed()
	if len(failed) != 1 || !failed[0].TimedOut {
		t.Fatalf("want 1 timed-out instance, got %+v", failed)
	}
	if res.Sched.Failed != 1 {
		t.Fatalf("sched.Failed = %d want 1", res.Sched.Failed)
	}
}

// TestDuplicateKeyRejected: ambiguous merges are refused.
func TestDuplicateKeyRejected(t *testing.T) {
	mini := workload.Generate(workload.MiniProfile())
	in := Instance{Subject: mini.Name, Group: "io", Source: mini.Source, FSMs: fsm.Builtins()[:1]}
	if _, err := Run(context.Background(), []Instance{in, in}, Options{}); err == nil {
		t.Fatal("duplicate (subject, group) accepted")
	}
}

// TestSchedulerCounters: queue metrics reflect the batch shape.
func TestSchedulerCounters(t *testing.T) {
	subjects := miniSubjects(t)
	instances := Expand(subjects, GroupPerFSM(fsm.Builtins()), checker.Options{})
	res := runBatch(t, instances, 2)
	s := res.Sched
	n := int64(len(instances))
	if s.Enqueued != n || s.Started != n || s.Completed != n || s.Failed != 0 {
		t.Fatalf("counters: %+v want %d instances all completed", s, n)
	}
	if s.MaxDepth < 1 || s.MaxDepth > n {
		t.Fatalf("max depth %d out of range [1,%d]", s.MaxDepth, n)
	}
	if s.TotalRun <= 0 {
		t.Fatal("no runtime recorded")
	}
}
