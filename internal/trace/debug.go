package trace

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// debugProgress is the Progress instance the expvar mirror reads. expvar
// names are process-global and Publish panics on duplicates, so the mirror
// is published once and indirects through this pointer; a later ServeDebug
// (tests, long-lived sessions) swaps the target instead of re-publishing.
var debugProgress atomic.Pointer[Progress]

var publishOnce sync.Once

// ServeDebug serves net/http/pprof profiles and expvar counters on addr
// (host:port; ":0" picks a free port). The expvar page (/debug/vars)
// includes "grapple.progress", a live mirror of p's snapshot — the same
// counters internal/metrics feeds into Progress — alongside the stdlib
// memstats. Returns the bound address and a stop function.
func ServeDebug(addr string, p *Progress) (bound string, stop func() error, err error) {
	debugProgress.Store(p)
	publishOnce.Do(func() {
		expvar.Publish("grapple.progress", expvar.Func(func() any {
			return debugProgress.Load().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
