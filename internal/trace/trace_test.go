package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil recorder must be a complete no-op: every method callable, zero
// allocations of consequence, inert spans.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	if tid := r.Thread("w"); tid != 0 {
		t.Fatalf("nil Thread = %d, want 0", tid)
	}
	sp := r.Start(0, "cat", "name")
	sp.End(Args{"k": 1})
	r.Instant(0, "cat", "ev", nil)
	r.Counter(0, "c", Args{"v": 1})
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	if n := r.EventCount(); n != 0 {
		t.Fatalf("nil EventCount = %d", n)
	}
}

// A nil Progress must equally be inert.
func TestNilProgressIsInert(t *testing.T) {
	var p *Progress
	p.SetPhase("x")
	p.Update(EngineUpdate{Frontier: 1})
	p.SetBatch(3)
	p.InstanceStart()
	p.InstanceDone()
	s := p.Snapshot()
	if s.ETA != -1 {
		t.Fatalf("nil snapshot ETA = %v, want -1", s.ETA)
	}
	stop := p.Heartbeat(time.Millisecond, os.Stderr, "")
	stop()
	stop() // idempotent
}

func TestChromeTraceAndJSONLStream(t *testing.T) {
	var chrome, events bytes.Buffer
	r := NewWriters(&chrome, &events)
	w1 := r.Thread("alias")
	sp := r.Start(w1, "engine", "superstep")
	sp.End(Args{"pair": Pair(0, 1), "firsts": 42})
	r.Instant(w1, "storage", "load", Args{"bytes": 1024})
	r.Counter(w1, "edges", Args{"edges": 7})
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The Chrome document must parse and hold exactly our events.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome JSON: %v\n%s", err, chrome.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d, want 4", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if _, ok := ev["tid"]; !ok {
			t.Fatalf("event missing tid: %v", ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok && ev["name"] != "superstep" {
				t.Fatalf("span missing dur: %v", ev)
			}
		}
	}
	if phases["M"] != 1 || phases["X"] != 1 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("phase mix %v", phases)
	}

	// Every JSONL line must parse independently.
	sc := bufio.NewScanner(bytes.NewReader(events.Bytes()))
	lines := 0
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("jsonl line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("jsonl lines = %d, want 4", lines)
	}
}

// Span IDs are a deterministic sequence, not random: two identical
// single-threaded runs produce identical ID assignments.
func TestDeterministicSpanIDs(t *testing.T) {
	runIDs := func() []uint64 {
		var chrome bytes.Buffer
		r := NewWriters(&chrome, nil)
		var ids []uint64
		for i := 0; i < 5; i++ {
			sp := r.Start(0, "c", "s")
			ids = append(ids, sp.id)
			sp.End(nil)
		}
		r.Close()
		return ids
	}
	a, b := runIDs(), runIDs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run1 ids %v != run2 ids %v", a, b)
		}
		if i > 0 && a[i] != a[i-1]+1 {
			t.Fatalf("ids not sequential: %v", a)
		}
	}
}

// Concurrent span emission must be safe (exercised under -race by make race).
func TestConcurrentRecording(t *testing.T) {
	var chrome bytes.Buffer
	r := NewWriters(&chrome, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := r.Thread("worker")
			for i := 0; i < 50; i++ {
				sp := r.Start(tid, "t", "op")
				sp.End(Args{"i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, want := r.EventCount(), 8*50+8; got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
}

func TestOpenWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.trace.json")
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.Start(0, "c", "s").End(nil)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Fatalf("chrome file: %s", data)
	}
	if _, err := os.Stat(path + ".events.jsonl"); err != nil {
		t.Fatalf("events stream: %v", err)
	}
}

func TestProgressSnapshotAndHeartbeat(t *testing.T) {
	p := NewProgress()
	p.SetPhase("alias")
	p.Update(EngineUpdate{Frontier: 10, DirtyPairs: 3, Edges: 100, Solved: 5, CacheHits: 2, CacheLkps: 4})
	s := p.Snapshot()
	if s.Phase != "alias" || s.Superstep != 1 || s.Frontier != 10 || s.DirtyPairs != 3 || s.Edges != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.ETA < 0 {
		t.Fatalf("ETA unknown despite completed supersteps: %+v", s)
	}
	if !strings.Contains(s.Line(), "superstep 1") || !strings.Contains(s.Line(), "frontier 10") {
		t.Fatalf("line %q", s.Line())
	}

	dir := t.TempDir()
	statusPath := filepath.Join(dir, "status.json")
	var hb bytes.Buffer
	var hbMu sync.Mutex
	lw := &lockedWriter{w: &hb, mu: &hbMu}
	stop := p.Heartbeat(5*time.Millisecond, lw, statusPath)
	deadline := time.Now().Add(2 * time.Second)
	for {
		hbMu.Lock()
		n := hb.Len()
		hbMu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat line within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent

	// The final stop() write guarantees status.json exists and parses.
	data, err := os.ReadFile(statusPath)
	if err != nil {
		t.Fatalf("status.json: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("status.json parse: %v\n%s", err, data)
	}
	if snap.Superstep != 1 || snap.Phase != "alias" {
		t.Fatalf("status snapshot %+v", snap)
	}
	hbMu.Lock()
	line := hb.String()
	hbMu.Unlock()
	if !strings.Contains(line, "grapple: alias") {
		t.Fatalf("heartbeat line %q", line)
	}
}

type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestProgressBatchMode(t *testing.T) {
	p := NewProgress()
	p.SetBatch(4)
	p.InstanceStart()
	p.InstanceStart()
	p.InstanceDone()
	s := p.Snapshot()
	if s.BatchTotal != 4 || s.BatchDone != 1 || s.BatchRunning != 1 {
		t.Fatalf("batch snapshot %+v", s)
	}
	if !strings.Contains(s.Line(), "batch 1/4") {
		t.Fatalf("batch line %q", s.Line())
	}
	if s.ETA < 0 {
		t.Fatalf("batch ETA unknown after a completion: %+v", s)
	}
}

func TestServeDebug(t *testing.T) {
	p := NewProgress()
	p.SetPhase("dataflow")
	p.Update(EngineUpdate{Edges: 9})
	bound, stop, err := ServeDebug("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	prog, ok := vars["grapple.progress"].(map[string]any)
	if !ok {
		t.Fatalf("no grapple.progress mirror in expvar: %v", vars["grapple.progress"])
	}
	if prog["phase"] != "dataflow" {
		t.Fatalf("mirrored phase %v", prog["phase"])
	}
	// pprof index must answer too.
	resp2, err := http.Get("http://" + bound + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp2.StatusCode)
	}
}
