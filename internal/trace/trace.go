// Package trace is Grapple's observability substrate: a span/event recorder
// for the checking pipeline (Chrome trace-event JSON plus a JSONL stream),
// a live progress tracker with a heartbeat and an atomically-rewritten
// status file, and a pprof/expvar debug server.
//
// The recorder is zero-overhead when disabled: every method is safe on a
// nil *Recorder and returns immediately, so instrumented code holds one
// nil-checked pointer and pays a single predictable branch per site. When
// enabled, timestamps come from one monotonic clock anchored at New, and
// span IDs are a deterministic sequence (1, 2, 3, ...) rather than random,
// so two traces of the same run are structurally comparable.
//
// Tracing is observation only. It never changes pair scheduling, insertion
// order, widening, or reports — the engine's byte-identical-output contract
// holds with tracing on or off, and cmd/grapple's golden-identity test pins
// that.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Args carries event metadata. encoding/json marshals map keys in sorted
// order, so serialized args are deterministic.
type Args map[string]any

// event is one recorded trace event (a completed span, an instant, a
// counter sample, or thread metadata).
type event struct {
	ph   byte // 'X' span, 'i' instant, 'C' counter, 'M' metadata
	id   uint64
	tid  uint64
	cat  string
	name string
	ts   time.Duration // since recorder start
	dur  time.Duration // spans only
	args Args
}

// Recorder collects spans and events and writes them out on Close. All
// methods are safe for concurrent use and safe on a nil receiver (no-ops).
type Recorder struct {
	start  time.Time     // monotonic anchor; all timestamps are Since(start)
	nextID atomic.Uint64 // deterministic span/event IDs
	tids   atomic.Uint64 // thread lanes handed out by Thread

	mu     sync.Mutex
	events []event
	jsonl  *bufio.Writer // optional streamed JSONL sink
	chrome io.Writer     // Chrome trace-event JSON sink, written on Close
	owned  []io.Closer   // files opened by Open, closed by Close
	err    error         // first write error, surfaced by Close
}

// NewWriters builds a recorder over caller-owned sinks. chrome receives the
// complete Chrome trace-event JSON document on Close; events receives one
// JSON line per event as it completes. Either may be nil.
func NewWriters(chrome, events io.Writer) *Recorder {
	r := &Recorder{start: time.Now(), chrome: chrome}
	if events != nil {
		r.jsonl = bufio.NewWriter(events)
	}
	return r
}

// Open creates a recorder writing Chrome trace-event JSON to path and the
// JSONL event stream to path + ".events.jsonl". Close finalizes both files.
func Open(path string) (*Recorder, error) {
	cf, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	ef, err := os.Create(path + ".events.jsonl")
	if err != nil {
		cf.Close()
		return nil, err
	}
	r := NewWriters(cf, ef)
	r.owned = append(r.owned, ef, cf)
	return r, nil
}

// Enabled reports whether the recorder actually records.
func (r *Recorder) Enabled() bool { return r != nil }

// now is the monotonic timestamp used for every event.
func (r *Recorder) now() time.Duration { return time.Since(r.start) }

// Thread allocates a new thread lane (Chrome tid) and labels it with a
// metadata event. Lane 0 is the default for code that never calls Thread.
// Returns 0 on a nil recorder.
func (r *Recorder) Thread(name string) uint64 {
	if r == nil {
		return 0
	}
	tid := r.tids.Add(1)
	r.record(event{ph: 'M', id: r.nextID.Add(1), tid: tid, name: "thread_name", args: Args{"name": name}})
	return tid
}

// Span is one in-flight timed operation. The zero Span (and any Span from a
// nil recorder) is inert: End is a no-op.
type Span struct {
	r    *Recorder
	id   uint64
	tid  uint64
	cat  string
	name string
	t0   time.Duration
}

// Start opens a span on thread lane tid. End completes it.
func (r *Recorder) Start(tid uint64, cat, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, id: r.nextID.Add(1), tid: tid, cat: cat, name: name, t0: r.now()}
}

// End completes the span, attaching args (nil for none).
func (s Span) End(args Args) {
	if s.r == nil {
		return
	}
	s.r.record(event{ph: 'X', id: s.id, tid: s.tid, cat: s.cat, name: s.name,
		ts: s.t0, dur: s.r.now() - s.t0, args: args})
}

// Instant records a point event.
func (r *Recorder) Instant(tid uint64, cat, name string, args Args) {
	if r == nil {
		return
	}
	r.record(event{ph: 'i', id: r.nextID.Add(1), tid: tid, cat: cat, name: name, ts: r.now(), args: args})
}

// Counter records a sample of one or more named series (rendered as a
// stacked counter track in Perfetto).
func (r *Recorder) Counter(tid uint64, name string, vals Args) {
	if r == nil {
		return
	}
	r.record(event{ph: 'C', id: r.nextID.Add(1), tid: tid, name: name, ts: r.now(), args: vals})
}

// jsonlEvent is the JSONL stream's line format.
type jsonlEvent struct {
	Type  string  `json:"type"` // "span", "instant", "counter", "meta"
	ID    uint64  `json:"id"`
	TID   uint64  `json:"tid"`
	Cat   string  `json:"cat,omitempty"`
	Name  string  `json:"name"`
	TsUs  float64 `json:"tsUs"`
	DurUs float64 `json:"durUs,omitempty"`
	Args  Args    `json:"args,omitempty"`
}

var phNames = map[byte]string{'X': "span", 'i': "instant", 'C': "counter", 'M': "meta"}

// record appends the event and streams its JSONL line.
func (r *Recorder) record(ev event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
	if r.jsonl == nil || r.err != nil {
		return
	}
	line, err := json.Marshal(jsonlEvent{
		Type: phNames[ev.ph], ID: ev.id, TID: ev.tid, Cat: ev.cat, Name: ev.name,
		TsUs: us(ev.ts), DurUs: us(ev.dur), Args: ev.args,
	})
	if err == nil {
		_, err = r.jsonl.Write(append(line, '\n'))
	}
	if err != nil {
		r.err = err
	}
}

// us converts a duration to Chrome's microsecond unit.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// chromeEvent is the Chrome trace-event JSON format (one element of the
// traceEvents array); see Perfetto's "Trace Event Format" spec.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  uint64  `json:"tid"`
	S    string  `json:"s,omitempty"`  // instant scope
	ID   uint64  `json:"id,omitempty"` // span id
	Args Args    `json:"args,omitempty"`
}

// chromeDoc is the top-level Chrome trace document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Err returns the first streaming write error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes the JSONL stream, writes the Chrome trace document, and
// closes any files Open created. Safe on nil.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jsonl != nil {
		if err := r.jsonl.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
	if r.chrome != nil {
		doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(r.events)), DisplayTimeUnit: "ms"}
		for _, ev := range r.events {
			ce := chromeEvent{
				Name: ev.name, Cat: ev.cat, Ph: string(ev.ph), Ts: us(ev.ts),
				Pid: 1, Tid: ev.tid, Args: ev.args,
			}
			switch ev.ph {
			case 'X':
				ce.Dur = us(ev.dur)
				ce.ID = ev.id
			case 'i':
				ce.S = "t"
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
		enc := json.NewEncoder(r.chrome)
		if err := enc.Encode(doc); err != nil && r.err == nil {
			r.err = err
		}
		r.chrome = nil
	}
	for _, c := range r.owned {
		if err := c.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	r.owned = nil
	return r.err
}

// EventCount returns how many events have been recorded (bench reporting).
func (r *Recorder) EventCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Pair formats a partition-pair label like "3+7".
func Pair(i, j int) string { return fmt.Sprintf("%d+%d", i, j) }
