package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/storage"
)

// Progress is the live state of a long-running check, updated by the engine
// at superstep boundaries (and by the batch scheduler at instance
// boundaries) and read by the heartbeat goroutine, the status.json writer,
// and the expvar mirror. All methods are safe for concurrent use and safe
// on a nil receiver, so instrumented code holds one nil-checked pointer.
//
// Updates happen at coarse boundaries — once per superstep, not per edge —
// so a mutex is cheap; readers only ever see a consistent snapshot.
type Progress struct {
	mu    sync.Mutex
	start time.Time

	phase      string
	phaseStart time.Time
	phaseSteps int64 // supersteps completed in the current phase

	superstep  int64 // supersteps completed across all phases
	frontier   int64 // source edges joined in the latest superstep
	dirtyPairs int64 // partition pairs still scheduled for (re)processing
	edges      int64 // distinct edges discovered so far
	solved     int64
	cacheHits  int64
	cacheLkps  int64
	io         metrics.IOSnapshot

	batchTotal   int64 // batch mode when > 0
	batchDone    int64
	batchRunning int64
}

// NewProgress starts a progress tracker; its clock anchors here.
func NewProgress() *Progress {
	return &Progress{start: time.Now(), phaseStart: time.Now()}
}

// SetPhase names the pipeline phase now running and restarts the per-phase
// clock.
func (p *Progress) SetPhase(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = name
	p.phaseStart = time.Now()
	p.phaseSteps = 0
	p.mu.Unlock()
}

// EngineUpdate is one superstep's worth of engine counters.
type EngineUpdate struct {
	Frontier   int64 // source edges eligible for joining this superstep
	DirtyPairs int64 // pairs still dirty after this superstep
	Edges      int64 // distinct edges discovered so far
	Solved     int64
	CacheHits  int64
	CacheLkps  int64
	IO         metrics.IOSnapshot
}

// Update records one completed superstep.
func (p *Progress) Update(u EngineUpdate) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.superstep++
	p.phaseSteps++
	p.frontier = u.Frontier
	p.dirtyPairs = u.DirtyPairs
	p.edges = u.Edges
	p.solved = u.Solved
	p.cacheHits = u.CacheHits
	p.cacheLkps = u.CacheLkps
	p.io = u.IO
	p.mu.Unlock()
}

// SetBatch switches the tracker to batch mode with the given instance count.
func (p *Progress) SetBatch(total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.batchTotal = int64(total)
	p.mu.Unlock()
}

// InstanceStart records a batch instance beginning to run.
func (p *Progress) InstanceStart() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.batchRunning++
	p.mu.Unlock()
}

// InstanceDone records a batch instance finishing (ok or failed).
func (p *Progress) InstanceDone() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.batchRunning--
	p.batchDone++
	p.mu.Unlock()
}

// Snapshot is a consistent point-in-time view of Progress.
type Snapshot struct {
	Phase        string        `json:"phase,omitempty"`
	Superstep    int64         `json:"superstep"`
	Frontier     int64         `json:"frontier"`
	DirtyPairs   int64         `json:"dirtyPairs"`
	Edges        int64         `json:"edges"`
	SolverCalls  int64         `json:"solverCalls"`
	CacheHits    int64         `json:"cacheHits"`
	CacheLookups int64         `json:"cacheLookups"`
	BytesRead    int64         `json:"ioBytesRead"`
	BytesWritten int64         `json:"ioBytesWritten"`
	JournalBytes int64         `json:"journalBytes"`
	BatchTotal   int64         `json:"batchTotal,omitempty"`
	BatchDone    int64         `json:"batchDone,omitempty"`
	BatchRunning int64         `json:"batchRunning,omitempty"`
	Elapsed      time.Duration `json:"elapsedNs"`
	PhaseElapsed time.Duration `json:"phaseElapsedNs"`
	// ETA is a rough completion estimate: remaining work items (dirty pairs,
	// or pending batch instances) times the observed per-item rate. It is a
	// lower bound — supersteps can dirty new pairs — and -1 when unknown.
	ETA time.Duration `json:"etaNs"`
	// UpdatedUnixMs is wall-clock time of the snapshot, for external pollers
	// of status.json.
	UpdatedUnixMs int64 `json:"updatedUnixMs"`
}

// Snapshot returns the current state. The zero Snapshot (nil receiver) has
// ETA -1.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{ETA: -1}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		Phase:         p.phase,
		Superstep:     p.superstep,
		Frontier:      p.frontier,
		DirtyPairs:    p.dirtyPairs,
		Edges:         p.edges,
		SolverCalls:   p.solved,
		CacheHits:     p.cacheHits,
		CacheLookups:  p.cacheLkps,
		BytesRead:     p.io.BytesRead,
		BytesWritten:  p.io.BytesWritten,
		JournalBytes:  p.io.JournalBytes,
		BatchTotal:    p.batchTotal,
		BatchDone:     p.batchDone,
		BatchRunning:  p.batchRunning,
		Elapsed:       time.Since(p.start),
		PhaseElapsed:  time.Since(p.phaseStart),
		ETA:           -1,
		UpdatedUnixMs: time.Now().UnixMilli(),
	}
	switch {
	case p.batchTotal > 0 && p.batchDone > 0:
		s.ETA = time.Duration(int64(s.Elapsed) / p.batchDone * (p.batchTotal - p.batchDone))
	case p.phaseSteps > 0 && p.dirtyPairs >= 0:
		s.ETA = time.Duration(int64(s.PhaseElapsed) / p.phaseSteps * p.dirtyPairs)
	}
	return s
}

// Line renders the one-line stderr heartbeat.
func (s Snapshot) Line() string {
	eta := "?"
	if s.ETA >= 0 {
		eta = s.ETA.Round(time.Second).String()
	}
	if s.BatchTotal > 0 {
		return fmt.Sprintf("grapple: batch %d/%d instances done (%d running) | elapsed %v | eta ≥%s",
			s.BatchDone, s.BatchTotal, s.BatchRunning,
			s.Elapsed.Round(time.Second), eta)
	}
	return fmt.Sprintf("grapple: %s superstep %d | frontier %d | dirty pairs %d | edges %d | solver %d (%d/%d cached) | elapsed %v | eta ≥%s",
		s.Phase, s.Superstep, s.Frontier, s.DirtyPairs, s.Edges,
		s.SolverCalls, s.CacheHits, s.CacheLookups,
		s.Elapsed.Round(time.Second), eta)
}

// StatusJSON renders the snapshot as the status.json document (one JSON
// object, trailing newline).
func (s Snapshot) StatusJSON() []byte {
	b, _ := json.Marshal(s)
	return append(b, '\n')
}

// Heartbeat periodically writes Snapshot().Line() to w (skipped when nil)
// and atomically rewrites statusPath (skipped when empty) every interval.
// The rewrite uses the storage layer's crash-safe write path — temp file,
// fsync, rename — so a poller never observes a torn status.json. The
// returned stop function halts the ticker and writes one final status so
// the file reflects the completed run; it is idempotent.
func (p *Progress) Heartbeat(every time.Duration, w io.Writer, statusPath string) (stop func()) {
	if p == nil || every <= 0 || (w == nil && statusPath == "") {
		return func() {}
	}
	emit := func() {
		s := p.Snapshot()
		if w != nil {
			fmt.Fprintln(w, s.Line())
		}
		if statusPath != "" {
			// Best-effort: a transiently unwritable status file must not
			// kill a 33-hour check.
			_ = storage.WriteFileAtomic(statusPath, s.StatusJSON())
		}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				emit()
			case <-done:
				if statusPath != "" {
					_ = storage.WriteFileAtomic(statusPath, p.Snapshot().StatusJSON())
				}
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
