package baseline

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// MarshalConj renders a conjunction as the self-contained text the naive
// engine embeds into each edge: "2*s3-1*s7+4<=0&&1*s2!=0". Verbose decimal
// text is exactly what "represent the actual constraints ... and save them
// with edges" costs in practice (§5.3, Table 5).
func MarshalConj(c constraint.Conj) string {
	if len(c) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range c {
		if i > 0 {
			b.WriteString("&&")
		}
		for j, t := range a.LHS.Terms {
			if j > 0 && t.Coeff >= 0 {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%d*s%d", t.Coeff, t.Sym)
		}
		if len(a.LHS.Terms) == 0 || a.LHS.Const != 0 {
			if len(a.LHS.Terms) > 0 && a.LHS.Const >= 0 {
				b.WriteByte('+')
			}
			fmt.Fprintf(&b, "%d", a.LHS.Const)
		}
		b.WriteString(a.Op.String())
		b.WriteByte('0')
	}
	return b.String()
}

// UnmarshalConj parses MarshalConj's output.
func UnmarshalConj(s string) (constraint.Conj, error) {
	if s == "" {
		return nil, nil
	}
	var out constraint.Conj
	for _, atomText := range strings.Split(s, "&&") {
		var op constraint.Op
		var idx int
		switch {
		case strings.Contains(atomText, "<="):
			op, idx = constraint.LE, strings.Index(atomText, "<=")
		case strings.Contains(atomText, ">="):
			op, idx = constraint.GE, strings.Index(atomText, ">=")
		case strings.Contains(atomText, "!="):
			op, idx = constraint.NE, strings.Index(atomText, "!=")
		case strings.Contains(atomText, "=="):
			op, idx = constraint.EQ, strings.Index(atomText, "==")
		case strings.Contains(atomText, "<"):
			op, idx = constraint.LT, strings.Index(atomText, "<")
		case strings.Contains(atomText, ">"):
			op, idx = constraint.GT, strings.Index(atomText, ">")
		default:
			return nil, fmt.Errorf("baseline: bad atom %q", atomText)
		}
		lhs := atomText[:idx]
		expr, err := parseLinear(lhs)
		if err != nil {
			return nil, err
		}
		out = append(out, constraint.Atom{LHS: expr, Op: op})
	}
	return out, nil
}

func parseLinear(s string) (symbolic.Expr, error) {
	e := symbolic.Expr{}
	i := 0
	for i < len(s) {
		j := i
		if s[j] == '+' || s[j] == '-' {
			j++
		}
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		coeff, err := strconv.ParseInt(s[i:j], 10, 64)
		if err != nil {
			return e, fmt.Errorf("baseline: bad coefficient in %q", s)
		}
		if j < len(s) && s[j] == '*' {
			j++
			if j >= len(s) || s[j] != 's' {
				return e, fmt.Errorf("baseline: expected symbol in %q", s)
			}
			j++
			k := j
			for k < len(s) && s[k] >= '0' && s[k] <= '9' {
				k++
			}
			sym, err := strconv.ParseInt(s[j:k], 10, 32)
			if err != nil {
				return e, fmt.Errorf("baseline: bad symbol in %q", s)
			}
			e = e.Add(symbolic.Var(symbolic.Sym(sym)).Scale(coeff))
			i = k
			continue
		}
		e = e.Add(symbolic.Const(coeff))
		i = j
	}
	return e, nil
}

// StringStats reports a naive string-engine run (Table 5's columns).
type StringStats struct {
	Partitions  int
	Iterations  int64
	Constraints int64 // solver invocations
	EdgesAfter  int64
	Elapsed     time.Duration
	TimedOut    bool
}

// StringOptions configures the naive engine.
type StringOptions struct {
	Dir          string
	MemoryBudget int64
	Timeout      time.Duration
	// MaxVariants terminates constraint-variant growth as in the main
	// engine (the naive engine still must terminate to be measured).
	MaxVariants int
}

// strEdge is the naive edge representation: the constraint is carried as a
// string, so edge data is an order of magnitude larger than an interval
// sequence and every solve re-parses it.
type strEdge struct {
	src, dst uint32
	label    grammar.Label
	gen      uint32
	text     string
}

func (e *strEdge) bytes() int64 { return 16 + int64(len(e.text)) }

type strPart struct {
	lo, hi uint32
	path   string
	bytes  int64
	maxGen uint32
}

// StringEngine is the "naive implementation that encodes constraints into
// strings" the paper compares against in Table 5. It shares the
// edge-pair-centric structure of the real engine but (a) stores full
// constraint strings on edges, inflating partitions, (b) re-joins whole
// partition pairs without semi-naive filtering, and (c) never memoizes
// solver calls.
type StringEngine struct {
	ic   *cfet.ICFET
	g    *grammar.Grammar
	opts StringOptions

	parts    []*strPart
	keys     map[uint64]bool
	vars     map[storage.Endpoint]int
	lastPair map[[2]*strPart]uint32
	stats    StringStats
	gen      uint32
}

// NewStringEngine builds a naive engine.
func NewStringEngine(ic *cfet.ICFET, g *grammar.Grammar, opts StringOptions) *StringEngine {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 64 << 20
	}
	if opts.MaxVariants <= 0 {
		opts.MaxVariants = 6
	}
	return &StringEngine{
		ic: ic, g: g, opts: opts,
		keys:     map[uint64]bool{},
		vars:     map[storage.Endpoint]int{},
		lastPair: map[[2]*strPart]uint32{},
	}
}

func strEdgeKey(e *strEdge) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) { h ^= v; h *= 1099511628211 }
	mix(uint64(e.src))
	mix(uint64(e.dst))
	mix(uint64(e.label))
	for i := 0; i < len(e.text); i++ {
		mix(uint64(e.text[i]))
	}
	return h
}

// Run computes the closure; initial edges' encodings are decoded up-front
// into constraint strings.
func (se *StringEngine) Run(initial []storage.Edge, numVertices uint32) (*StringStats, error) {
	start := time.Now()
	if err := os.MkdirAll(se.opts.Dir, 0o755); err != nil {
		return nil, err
	}
	var deadline time.Time
	if se.opts.Timeout > 0 {
		deadline = start.Add(se.opts.Timeout)
	}

	var all []*strEdge
	for i := range initial {
		conj, err := se.ic.Decode(initial[i].Enc)
		if err != nil {
			conj = nil
		}
		e := &strEdge{src: initial[i].Src, dst: initial[i].Dst,
			label: initial[i].Label, text: MarshalConj(conj)}
		for _, v := range se.expand(e) {
			k := strEdgeKey(v)
			if !se.keys[k] {
				se.keys[k] = true
				se.vars[storage.Endpoint{Src: v.src, Dst: v.dst, Label: v.label}]++
				all = append(all, v)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].src < all[j].src })
	if err := se.partition(all, numVertices); err != nil {
		return nil, err
	}

	solver := smt.New(smt.DefaultOptions())
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			se.stats.TimedOut = true
			break
		}
		i, j, ok := se.nextDirtyPair()
		if !ok {
			break
		}
		if err := se.processPair(i, j, solver, deadline); err != nil {
			return nil, err
		}
		se.stats.Iterations++
	}
	se.stats.Partitions = len(se.parts)
	se.stats.Elapsed = time.Since(start)
	var edges int64
	for _, p := range se.parts {
		es, err := se.loadPart(p)
		if err != nil {
			return nil, err
		}
		edges += int64(len(es))
	}
	se.stats.EdgesAfter = edges
	s := se.stats
	return &s, nil
}

func (se *StringEngine) expand(e *strEdge) []*strEdge {
	out := []*strEdge{e}
	for i := 0; i < len(out); i++ {
		cur := out[i]
		for _, head := range se.g.MatchUnary(cur.label) {
			out = append(out, &strEdge{src: cur.src, dst: cur.dst, label: head, gen: cur.gen, text: cur.text})
		}
		if m := se.g.Mirror(cur.label); m != grammar.NoLabel {
			out = append(out, &strEdge{src: cur.dst, dst: cur.src, label: m, gen: cur.gen, text: cur.text})
		}
	}
	return out
}

func (se *StringEngine) partition(all []*strEdge, numVertices uint32) error {
	limit := se.opts.MemoryBudget / 4
	var cur []*strEdge
	var curBytes int64
	var lo uint32
	flush := func(hi uint32) error {
		p := &strPart{lo: lo, hi: hi,
			path: filepath.Join(se.opts.Dir, fmt.Sprintf("npart-%06d.txt", len(se.parts)))}
		for _, e := range cur {
			p.bytes += e.bytes()
		}
		if err := se.storePart(p, cur); err != nil {
			return err
		}
		se.parts = append(se.parts, p)
		cur, curBytes = nil, 0
		lo = hi
		return nil
	}
	for i := 0; i < len(all); {
		src := all[i].src
		j := i
		var gb int64
		for ; j < len(all) && all[j].src == src; j++ {
			gb += all[j].bytes()
		}
		if curBytes > 0 && curBytes+gb > limit {
			if err := flush(src); err != nil {
				return err
			}
		}
		cur = append(cur, all[i:j]...)
		curBytes += gb
		i = j
	}
	if numVertices == 0 {
		numVertices = 1
	}
	if err := flush(numVertices); err != nil {
		return err
	}
	se.parts[len(se.parts)-1].hi = numVertices
	return nil
}

// storePart / loadPart use a plain text format: src dst label gen text\n.
func (se *StringEngine) storePart(p *strPart, edges []*strEdge) error {
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "%d %d %d %d %s\n", e.src, e.dst, e.label, e.gen, e.text)
	}
	return os.WriteFile(p.path, []byte(b.String()), 0o644)
}

func (se *StringEngine) loadPart(p *strPart) ([]*strEdge, error) {
	data, err := os.ReadFile(p.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*strEdge
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 5)
		if len(parts) < 4 {
			return nil, fmt.Errorf("baseline: bad record %q", line)
		}
		src, _ := strconv.ParseUint(parts[0], 10, 32)
		dst, _ := strconv.ParseUint(parts[1], 10, 32)
		label, _ := strconv.ParseUint(parts[2], 10, 16)
		gen, _ := strconv.ParseUint(parts[3], 10, 32)
		text := ""
		if len(parts) == 5 {
			text = parts[4]
		}
		out = append(out, &strEdge{src: uint32(src), dst: uint32(dst),
			label: grammar.Label(label), gen: uint32(gen), text: text})
	}
	return out, nil
}

// nextDirtyPair picks a pair one of whose sides changed since the pair was
// last processed. Unlike the real engine there is no edge-level semi-naive
// filtering: a dirty pair is re-joined wholesale.
func (se *StringEngine) nextDirtyPair() (int, int, bool) {
	for i := 0; i < len(se.parts); i++ {
		for j := i; j < len(se.parts); j++ {
			key := [2]*strPart{se.parts[i], se.parts[j]}
			last, seen := se.lastPair[key]
			if !seen || se.parts[i].maxGen > last || se.parts[j].maxGen > last {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

func (se *StringEngine) partOf(v uint32) int {
	for i, p := range se.parts {
		if v >= p.lo && v < p.hi {
			return i
		}
	}
	return len(se.parts) - 1
}

func (se *StringEngine) processPair(i, j int, solver *smt.Solver, deadline time.Time) error {
	se.gen++
	se.lastPair[[2]*strPart{se.parts[i], se.parts[j]}] = se.gen - 1
	ei, err := se.loadPart(se.parts[i])
	if err != nil {
		return err
	}
	ej := ei
	if j != i {
		if ej, err = se.loadPart(se.parts[j]); err != nil {
			return err
		}
	}
	bySrc := map[uint32][]*strEdge{}
	index := func(es []*strEdge) {
		for _, e := range es {
			bySrc[e.src] = append(bySrc[e.src], e)
		}
	}
	index(ei)
	if j != i {
		index(ej)
	}
	firsts := append([]*strEdge{}, ei...)
	if j != i {
		firsts = append(firsts, ej...)
	}

	added := map[int][]*strEdge{}
	for _, e1 := range firsts {
		if !deadline.IsZero() && time.Now().After(deadline) {
			se.stats.TimedOut = true
			break
		}
		for _, e2 := range bySrc[e1.dst] {
			heads := se.g.MatchBinary(e1.label, e2.label)
			if len(heads) == 0 {
				continue
			}
			text := concatConstraints(e1.text, e2.text)
			// No memoization: every candidate re-parses and re-solves.
			conj, perr := UnmarshalConj(text)
			if perr == nil && len(conj) > 0 {
				se.stats.Constraints++
				if solver.Solve(conj) == smt.Unsat {
					continue
				}
			}
			for _, h := range heads {
				cand := &strEdge{src: e1.src, dst: e2.dst, label: h, gen: se.gen, text: text}
				for _, v := range se.expand(cand) {
					k := strEdgeKey(v)
					if se.keys[k] {
						continue
					}
					ep := storage.Endpoint{Src: v.src, Dst: v.dst, Label: v.label}
					if se.vars[ep] >= se.opts.MaxVariants && v.text != "" {
						v = &strEdge{src: v.src, dst: v.dst, label: v.label, gen: v.gen}
						k = strEdgeKey(v)
						if se.keys[k] {
							continue
						}
					}
					se.keys[k] = true
					se.vars[ep]++
					owner := se.partOf(v.src)
					added[owner] = append(added[owner], v)
				}
			}
		}
	}
	// Append new edges to their partitions and split oversized ones.
	for owner, es := range added {
		p := se.parts[owner]
		existing, err := se.loadPart(p)
		if err != nil {
			return err
		}
		existing = append(existing, es...)
		for _, e := range es {
			p.bytes += e.bytes()
			if e.gen > p.maxGen {
				p.maxGen = e.gen
			}
		}
		if err := se.storePart(p, existing); err != nil {
			return err
		}
		if p.bytes > se.opts.MemoryBudget/3 && p.hi-p.lo > 1 {
			if err := se.split(owner, existing); err != nil {
				return err
			}
		}
	}
	return nil
}

func concatConstraints(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "&&" + b
	}
}

func (se *StringEngine) split(idx int, edges []*strEdge) error {
	p := se.parts[idx]
	srcs := make([]uint32, len(edges))
	for i, e := range edges {
		srcs[i] = e.src
	}
	sort.Slice(srcs, func(a, b int) bool { return srcs[a] < srcs[b] })
	mid := srcs[len(srcs)/2]
	if mid <= p.lo || mid >= p.hi {
		mid = p.lo + (p.hi-p.lo)/2
	}
	if mid <= p.lo || mid >= p.hi {
		return nil
	}
	var loE, hiE []*strEdge
	var loB, hiB int64
	var loG, hiG uint32
	for _, e := range edges {
		if e.src < mid {
			loE = append(loE, e)
			loB += e.bytes()
			if e.gen > loG {
				loG = e.gen
			}
		} else {
			hiE = append(hiE, e)
			hiB += e.bytes()
			if e.gen > hiG {
				hiG = e.gen
			}
		}
	}
	np := &strPart{lo: mid, hi: p.hi,
		path:  filepath.Join(se.opts.Dir, fmt.Sprintf("npart-%06d.txt", len(se.parts))),
		bytes: hiB, maxGen: hiG}
	p.hi = mid
	p.bytes = loB
	p.maxGen = loG
	if err := se.storePart(p, loE); err != nil {
		return err
	}
	if err := se.storePart(np, hiE); err != nil {
		return err
	}
	se.parts = append(se.parts, nil)
	copy(se.parts[idx+2:], se.parts[idx+1:])
	se.parts[idx+1] = np
	return nil
}
