package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/pgraph"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
)

func emptyICFET() *cfet.ICFET {
	return &cfet.ICFET{Syms: symbolic.NewTable(), MethodByName: map[string]cfet.MethodID{}, MaxEncLen: 64}
}

func TestMarshalRoundTrip(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	y := symbolic.Var(tab.Intern("y"))
	cases := []constraint.Conj{
		nil,
		{constraint.NewAtom(x, constraint.GE, symbolic.Const(0))},
		{constraint.NewAtom(x.Scale(2).Sub(y), constraint.LT, symbolic.Const(-3))},
		{
			constraint.NewAtom(x, constraint.NE, symbolic.Const(0)),
			constraint.NewAtom(y.Add(x.Scale(-4)), constraint.EQ, symbolic.Const(7)),
		},
		{constraint.Atom{LHS: symbolic.Const(5), Op: constraint.LE}},
	}
	for i, c := range cases {
		text := MarshalConj(c)
		got, err := UnmarshalConj(text)
		if err != nil {
			t.Fatalf("case %d (%q): %v", i, text, err)
		}
		if len(got) != len(c) {
			t.Fatalf("case %d: %d atoms, want %d", i, len(got), len(c))
		}
		for j := range c {
			if got[j].Op != c[j].Op || !got[j].LHS.Equal(c[j].LHS) {
				t.Fatalf("case %d atom %d: got %+v want %+v", i, j, got[j], c[j])
			}
		}
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		var c constraint.Conj
		for i := 0; i < n; i++ {
			e := symbolic.Const(int64(rng.Intn(21) - 10))
			for j := 0; j < 3; j++ {
				if rng.Intn(2) == 0 {
					e = e.Add(symbolic.Var(symbolic.Sym(rng.Intn(50))).Scale(int64(rng.Intn(9) - 4)))
				}
			}
			c = append(c, constraint.Atom{LHS: e, Op: constraint.Op(rng.Intn(6))})
		}
		got, err := UnmarshalConj(MarshalConj(c))
		if err != nil || len(got) != len(c) {
			return false
		}
		for j := range c {
			if got[j].Op != c[j].Op || !got[j].LHS.Equal(c[j].LHS) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, s := range []string{"garbage", "1*s", "x<=0", "1*s1??0"} {
		if _, err := UnmarshalConj(s); err == nil {
			t.Errorf("no error for %q", s)
		}
	}
}

func TestStringEngineClosureMatchesChain(t *testing.T) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 10
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, storage.Edge{Src: i, Dst: i + 1, Label: d.Flow})
	}
	se := NewStringEngine(emptyICFET(), d.G, StringOptions{Dir: t.TempDir()})
	st, err := se.Run(edges, n)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n * (n - 1) / 2)
	if st.EdgesAfter != want {
		t.Fatalf("closure = %d edges, want %d", st.EdgesAfter, want)
	}
	if st.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestStringEngineSmallBudgetSplits(t *testing.T) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 48
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, storage.Edge{Src: i, Dst: i + 1, Label: d.Flow})
	}
	se := NewStringEngine(emptyICFET(), d.G, StringOptions{Dir: t.TempDir(), MemoryBudget: 4096})
	st, err := se.Run(edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions < 2 {
		t.Fatalf("expected multiple partitions, got %d", st.Partitions)
	}
	if st.EdgesAfter != int64(n*(n-1)/2) {
		t.Fatalf("closure wrong across partitions: %d", st.EdgesAfter)
	}
}

func TestStringEngineTimeout(t *testing.T) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 200
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, storage.Edge{Src: i, Dst: i + 1, Label: d.Flow})
	}
	se := NewStringEngine(emptyICFET(), d.G, StringOptions{Dir: t.TempDir(), Timeout: time.Nanosecond})
	st, err := se.Run(edges, n)
	if err != nil {
		t.Fatal(err)
	}
	if !st.TimedOut {
		t.Fatal("expected timeout flag")
	}
}

func aliasGraphOf(t *testing.T, src string) (*cfet.ICFET, *pgraph.AliasGraph) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cg := callgraph.Build(p)
	ic, err := cfet.Build(p, symbolic.NewTable(), cfet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := pgraph.NewProgram(p, cg, ic, pgraph.Options{})
	return ic, pgraph.BuildAlias(pr)
}

const branchy = `
type R;
fun main() {
  var x: int = input();
  var a: R = new R();
  var b: R = a;
  var c: R = null;
  if (x > 0) {
    c = b;
  } else {
    c = a;
  }
  if (x > 1) {
    var d: R = c;
    d.use();
  }
  return;
}`

func TestTraditionalCompletesOnTinyProgram(t *testing.T) {
	ic, ag := aliasGraphOf(t, branchy)
	st, err := RunTraditional(ic, ag.Ptr.G, ag.Edges, TraditionalOptions{MemoryBudget: 32 << 20})
	if err != nil {
		t.Fatalf("tiny program should fit: %v (peak %d)", err, st.PeakBytes)
	}
	if st.Edges == 0 || st.PeakBytes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestTraditionalOOMsUnderBudget(t *testing.T) {
	ic, ag := aliasGraphOf(t, branchy)
	st, err := RunTraditional(ic, ag.Ptr.G, ag.Edges, TraditionalOptions{MemoryBudget: 512})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want OOM, got %v (%+v)", err, st)
	}
	if !st.OOM {
		t.Fatal("OOM flag not set")
	}
}

func TestTraditionalTimeout(t *testing.T) {
	ic, ag := aliasGraphOf(t, branchy)
	_, err := RunTraditional(ic, ag.Ptr.G, ag.Edges, TraditionalOptions{
		MemoryBudget: 1 << 30, Timeout: time.Nanosecond,
	})
	if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("unexpected error %v", err)
	}
}
