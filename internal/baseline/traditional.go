// Package baseline implements the two comparison systems of the paper's
// §5.3: a traditional (non-systemized) in-memory worklist implementation of
// the path-sensitive analysis that represents constraints as explicit
// formula objects attached to edges — which exhausts memory on every
// subject — and a "naive systemized" variant of the disk engine that embeds
// constraints into edges as strings instead of interval encodings (Table 5).
package baseline

import (
	"errors"
	"time"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
)

// ErrOutOfMemory is returned when the traditional implementation exceeds
// its memory budget ("they all crashed with out-of-memory errors", §5.4).
var ErrOutOfMemory = errors.New("baseline: out of memory")

// ErrTimeout is returned when a baseline exceeds its wall-clock budget
// (Table 5's ">200h" entry).
var ErrTimeout = errors.New("baseline: timed out")

// TraditionalStats reports a traditional-implementation run.
type TraditionalStats struct {
	Edges     int64
	PeakBytes int64
	OOM       bool
	Elapsed   time.Duration
}

// TraditionalOptions configures the worklist analysis.
type TraditionalOptions struct {
	// MemoryBudget bounds the estimated bytes of live edges + constraint
	// objects; exceeding it aborts with OOM (the paper's result).
	MemoryBudget int64
	// Timeout bounds wall-clock time.
	Timeout time.Duration
	// UseRel composes FSM transition relations (dataflow/typestate graphs).
	UseRel bool
}

// tradEdge carries the constraint as an explicit in-memory formula object,
// exactly the naive representation §3 argues against.
type tradEdge struct {
	src, dst uint32
	label    grammar.Label
	rel      fsm.Rel
	conj     constraint.Conj
}

// relBytes is the footprint of an explicit relation object.
const relBytes = 32

func conjBytes(c constraint.Conj) int64 {
	n := int64(24) // slice header
	for _, a := range c {
		n += 24 + 16*int64(len(a.LHS.Terms)) + 9
	}
	return n
}

func (e *tradEdge) bytes() int64 { return 16 + relBytes + conjBytes(e.conj) }

// RunTraditional runs the worklist-based, fully in-memory path-sensitive
// closure with explicit constraint objects. It is faithful to the paper's
// comparison implementation: no disk support, no encoding, no memoization —
// and consequently it exhausts any realistic memory budget on real subjects.
func RunTraditional(ic *cfet.ICFET, g *grammar.Grammar, initial []storage.Edge,
	opts TraditionalOptions) (*TraditionalStats, error) {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 64 << 20
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	stats := &TraditionalStats{}
	solver := smt.New(smt.DefaultOptions())

	var edges []*tradEdge
	bySrc := map[uint32][]*tradEdge{}
	byDst := map[uint32][]*tradEdge{}
	seen := map[uint64]bool{}
	var mem int64

	keyOf := func(e *tradEdge) uint64 {
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			h ^= v
			h *= 1099511628211
		}
		mix(uint64(e.src))
		mix(uint64(e.dst))
		mix(uint64(e.label))
		for _, row := range e.rel {
			mix(uint64(row))
		}
		for _, a := range e.conj {
			mix(uint64(a.Op))
			mix(uint64(a.LHS.Const))
			for _, t := range a.LHS.Terms {
				mix(uint64(t.Sym))
				mix(uint64(t.Coeff))
			}
		}
		return h
	}

	var work []*tradEdge
	add := func(e *tradEdge) bool {
		k := keyOf(e)
		if seen[k] {
			return true
		}
		seen[k] = true
		edges = append(edges, e)
		bySrc[e.src] = append(bySrc[e.src], e)
		byDst[e.dst] = append(byDst[e.dst], e)
		work = append(work, e)
		mem += e.bytes() + 8 /* map entry */
		if mem > stats.PeakBytes {
			stats.PeakBytes = mem
		}
		return mem <= opts.MemoryBudget
	}

	expand := func(e *tradEdge) []*tradEdge {
		out := []*tradEdge{e}
		for i := 0; i < len(out); i++ {
			cur := out[i]
			for _, head := range g.MatchUnary(cur.label) {
				out = append(out, &tradEdge{src: cur.src, dst: cur.dst, label: head, rel: cur.rel, conj: cur.conj})
			}
			if m := g.Mirror(cur.label); m != grammar.NoLabel {
				out = append(out, &tradEdge{src: cur.dst, dst: cur.src, label: m, rel: cur.rel, conj: cur.conj})
			}
		}
		return out
	}

	for i := range initial {
		conj, err := ic.Decode(initial[i].Enc)
		if err != nil {
			conj = nil
		}
		for _, v := range expand(&tradEdge{
			src: initial[i].Src, dst: initial[i].Dst,
			label: initial[i].Label, rel: initial[i].Rel, conj: conj,
		}) {
			if !add(v) {
				stats.OOM = true
				stats.Edges = int64(len(edges))
				stats.Elapsed = time.Since(start)
				return stats, ErrOutOfMemory
			}
		}
	}

	for len(work) > 0 {
		if !deadline.IsZero() && time.Now().After(deadline) {
			stats.Edges = int64(len(edges))
			stats.Elapsed = time.Since(start)
			return stats, ErrTimeout
		}
		e1 := work[len(work)-1]
		work = work[:len(work)-1]
		// Join e1 with successors (e1 as left) and predecessors (as right).
		var candidates []*tradEdge
		for _, e2 := range bySrc[e1.dst] {
			for _, head := range g.MatchBinary(e1.label, e2.label) {
				conj := append(append(constraint.Conj{}, e1.conj...), e2.conj...)
				cand := &tradEdge{src: e1.src, dst: e2.dst, label: head, conj: conj}
				if opts.UseRel {
					cand.rel = fsm.Compose(e1.rel, e2.rel)
				}
				candidates = append(candidates, cand)
			}
		}
		for _, e0 := range byDst[e1.src] {
			for _, head := range g.MatchBinary(e0.label, e1.label) {
				conj := append(append(constraint.Conj{}, e0.conj...), e1.conj...)
				cand := &tradEdge{src: e0.src, dst: e1.dst, label: head, conj: conj}
				if opts.UseRel {
					cand.rel = fsm.Compose(e0.rel, e1.rel)
				}
				candidates = append(candidates, cand)
			}
		}
		for _, c := range candidates {
			if len(c.conj) > 0 && solver.Solve(c.conj) == smt.Unsat {
				continue
			}
			for _, v := range expand(c) {
				if !add(v) {
					stats.OOM = true
					stats.Edges = int64(len(edges))
					stats.Elapsed = time.Since(start)
					return stats, ErrOutOfMemory
				}
			}
		}
	}
	stats.Edges = int64(len(edges))
	stats.Elapsed = time.Since(start)
	return stats, nil
}
