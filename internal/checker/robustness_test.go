package checker

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/fsm"
)

// randProgram emits a random (but well-formed) MiniLang program: statement
// soup over tracked objects, branches, loops, calls and exceptions. The
// robustness test drives these through the full pipeline; the analysis must
// terminate without panicking on any of them.
type randGen struct {
	rng   *rand.Rand
	b     strings.Builder
	varN  int
	depth int
	// in-scope variables by category
	ints []string
	objs []string
}

func (g *randGen) fresh(prefix string) string {
	g.varN++
	return fmt.Sprintf("%s%d", prefix, g.varN)
}

func (g *randGen) line(indent int, format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *randGen) intExpr() string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(20)-10)
	case 1:
		return "input()"
	case 2:
		if len(g.ints) > 0 {
			return g.ints[g.rng.Intn(len(g.ints))]
		}
		return "input()"
	default:
		if len(g.ints) > 0 {
			v := g.ints[g.rng.Intn(len(g.ints))]
			return fmt.Sprintf("%s %s %d", v, []string{"+", "-", "*"}[g.rng.Intn(3)], g.rng.Intn(5))
		}
		return fmt.Sprintf("%d", g.rng.Intn(9))
	}
}

func (g *randGen) cond() string {
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
	return fmt.Sprintf("%s %s %s", g.intExpr(), op, g.intExpr())
}

func (g *randGen) stmt(indent int) {
	switch g.rng.Intn(10) {
	case 0:
		v := g.fresh("n")
		g.line(indent, "var %s: int = %s;", v, g.intExpr())
		g.ints = append(g.ints, v)
	case 1:
		v := g.fresh("o")
		g.line(indent, "var %s: FileWriter = new FileWriter();", v)
		g.objs = append(g.objs, v)
	case 2:
		if len(g.objs) > 0 {
			o := g.objs[g.rng.Intn(len(g.objs))]
			ev := []string{"write", "close", "flush"}[g.rng.Intn(3)]
			g.line(indent, "%s.%s();", o, ev)
		}
	case 3:
		if len(g.objs) > 1 {
			a := g.objs[g.rng.Intn(len(g.objs))]
			b := g.objs[g.rng.Intn(len(g.objs))]
			if a != b {
				g.line(indent, "%s = %s;", a, b)
			}
		}
	case 4:
		if g.depth < 3 {
			g.depth++
			g.line(indent, "if (%s) {", g.cond())
			n := 1 + g.rng.Intn(3)
			for i := 0; i < n; i++ {
				g.stmt(indent + 1)
			}
			if g.rng.Intn(2) == 0 {
				g.line(indent, "} else {")
				g.stmt(indent + 1)
			}
			g.line(indent, "}")
			g.depth--
		}
	case 5:
		if g.depth < 2 {
			g.depth++
			v := g.fresh("i")
			g.line(indent, "var %s: int = 0;", v)
			g.line(indent, "while (%s < %d) {", v, 1+g.rng.Intn(5))
			g.stmt(indent + 1)
			g.line(indent+1, "%s = %s + 1;", v, v)
			g.line(indent, "}")
			g.depth--
		}
	case 6:
		if len(g.ints) > 0 {
			v := g.ints[g.rng.Intn(len(g.ints))]
			g.line(indent, "%s = %s;", v, g.intExpr())
		}
	case 7:
		if g.depth < 2 {
			g.depth++
			e := g.fresh("e")
			c := g.fresh("c")
			g.line(indent, "try {")
			g.stmt(indent + 1)
			if g.rng.Intn(2) == 0 {
				g.line(indent+1, "var %s: Exception = new Exception();", e)
				g.line(indent+1, "throw %s;", e)
			}
			g.line(indent, "} catch (%s) {", c)
			g.stmt(indent + 1)
			g.line(indent, "}")
			g.depth--
		}
	case 8:
		g.line(indent, "helper(%s);", g.intExpr())
	default:
		if len(g.objs) > 0 && g.rng.Intn(3) == 0 {
			box := g.fresh("bx")
			o := g.objs[g.rng.Intn(len(g.objs))]
			g.line(indent, "var %s: Box = new Box();", box)
			g.line(indent, "%s.f = %s;", box, o)
			v := g.fresh("ld")
			g.line(indent, "var %s: FileWriter = %s.f;", v, box)
			g.objs = append(g.objs, v)
		}
	}
}

func randProgram(seed int64) string {
	g := &randGen{rng: rand.New(rand.NewSource(seed))}
	g.line(0, "type FileWriter;")
	g.line(0, "type Exception;")
	g.line(0, "type Box;")
	g.line(0, "fun helper(n: int) {")
	g.line(1, "if (n > 3) {")
	g.line(2, "var he: Exception = new Exception();")
	g.line(2, "throw he;")
	g.line(1, "}")
	g.line(1, "return;")
	g.line(0, "}")
	g.line(0, "fun main() {")
	n := 4 + g.rng.Intn(10)
	for i := 0; i < n; i++ {
		g.stmt(1)
	}
	g.line(1, "return;")
	g.line(0, "}")
	return g.b.String()
}

// TestRobustnessRandomPrograms runs dozens of random programs through the
// full pipeline. The only requirements: no panic, no error, termination.
func TestRobustnessRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness sweep")
	}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := randProgram(seed)
			c := New(fsm.Builtins(), Options{WorkDir: t.TempDir()})
			if _, err := c.CheckSource(src); err != nil {
				t.Fatalf("seed %d failed: %v\nprogram:\n%s", seed, err, src)
			}
		})
	}
}

// TestRobustnessDeterminism: the same program always yields the same
// reports (maps are iterated all over the pipeline; ordering must not leak
// into results).
func TestRobustnessDeterminism(t *testing.T) {
	src := randProgram(7)
	var prev []Report
	for i := 0; i < 3; i++ {
		c := New(fsm.Builtins(), Options{WorkDir: t.TempDir()})
		res, err := c.CheckSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if len(res.Reports) != len(prev) {
				t.Fatalf("run %d: %d reports vs %d", i, len(res.Reports), len(prev))
			}
			for j := range prev {
				if prev[j].Pos != res.Reports[j].Pos || prev[j].FSM != res.Reports[j].FSM ||
					prev[j].Kind != res.Reports[j].Kind {
					t.Fatalf("run %d report %d differs: %v vs %v", i, j, prev[j], res.Reports[j])
				}
			}
		}
		prev = res.Reports
	}
}
