package checker

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/trace"
)

// obsIdentitySubjects are small programs spanning the behaviours the
// pipeline instruments: branches (pruning + path conditions), aliasing,
// interprocedural flow, loops, and a clean program with no reports.
var obsIdentitySubjects = []struct {
	name string
	src  string
}{
	{"branchy-leak", `
type FileWriter;
fun main() {
  var out: FileWriter = null;
  var x: int = input();
  if (x >= 0) {
    out = new FileWriter();
    out.write();
  }
  if (x < 0) {
    out.close();
  }
  return;
}`},
	{"alias-interproc", `
type FileWriter;
fun shut(w: FileWriter) {
  w.close();
  return;
}
fun main() {
  var a: FileWriter = new FileWriter();
  var b: FileWriter = a;
  b.write();
  shut(a);
  var c: FileWriter = new FileWriter();
  c.write();
  return;
}`},
	{"looped-clean", `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  var i: int = 0;
  while (i < 3) {
    w.write();
    i = i + 1;
  }
  w.close();
  return;
}`},
}

// TestTracingPreservesReports is the observation-only property test: for
// every subject, a run with the full observability stack attached (trace
// recorder + progress tracker) must produce reports deep-equal to a bare
// run — same order, same witnesses, same constraints.
func TestTracingPreservesReports(t *testing.T) {
	for _, sub := range obsIdentitySubjects {
		t.Run(sub.name, func(t *testing.T) {
			bare := New(fsm.Builtins(), Options{WorkDir: t.TempDir()})
			resBare, err := bare.CheckSource(sub.src)
			if err != nil {
				t.Fatal(err)
			}

			var chrome, jsonl bytes.Buffer
			rec := trace.NewWriters(&chrome, &jsonl)
			prog := trace.NewProgress()
			traced := New(fsm.Builtins(), Options{
				WorkDir:  t.TempDir(),
				Trace:    rec,
				TraceTID: rec.Thread("checker-test"),
				Progress: prog,
			})
			resTraced, err := traced.CheckSource(sub.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(resBare.Reports, resTraced.Reports) {
				t.Fatalf("reports differ with tracing on:\nbare:   %v\ntraced: %v",
					resBare.Reports, resTraced.Reports)
			}
			// renderReports (resume_test.go) serializes every report field;
			// the two streams must agree byte for byte.
			if renderReports(resBare.Reports) != renderReports(resTraced.Reports) {
				t.Fatal("rendered reports differ with tracing on")
			}
			if rec.EventCount() == 0 {
				t.Fatal("trace recorded no events")
			}
			if prog.Snapshot().Phase != "fsm-check" {
				t.Fatalf("final phase %q, want fsm-check", prog.Snapshot().Phase)
			}
		})
	}
}
