package checker

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/storage"
)

// resumeSrc tracks writers, a lock and sockets across calls and branches —
// big enough to force several partitions (and so several superstep
// checkpoints) under the small memory budget below, in both engine phases:
// with the 64 KiB budget the run crosses ~26 superstep boundaries (~7
// alias, ~19 dataflow), so the kill-at-every-boundary sweep covers both
// phases while staying a few seconds.
const resumeSrc = `
type FileWriter;
type Socket;
type Lock;
fun open(): FileWriter {
  var w: FileWriter = new FileWriter();
  w.write();
  return w;
}
fun maybeClose(w: FileWriter, n: int) {
  if (n > 0) {
    w.close();
  }
  return;
}
fun useSock(n: int) {
  var s: Socket = new Socket();
  if (n > 1) {
    s.connect();
    s.close();
  }
  return;
}
fun main() {
  var n: int = input();
  var m: int = n - 1;
  var a: FileWriter = open();
  var b: FileWriter = open();
  maybeClose(a, n);
  maybeClose(b, m);
  var l: Lock = new Lock();
  l.lock();
  if (n > 2) {
    l.unlock();
  }
  useSock(n);
  useSock(m);
  var c: FileWriter = null;
  if (n < 0) {
    c = new FileWriter();
    c.write();
  } else {
    c = a;
  }
  if (n < 0) {
    c.close();
  }
  return;
}`

func resumeSource(t *testing.T) string {
	t.Helper()
	return resumeSrc
}

func resumeOpts(dir string) Options {
	return Options{
		WorkDir: dir,
		Engine:  engine.Options{MemoryBudget: 65536, Workers: 2},
		Journal: true,
	}
}

// renderReports serializes every report field; two runs agree byte-for-byte
// iff their report streams are identical.
func renderReports(rs []Report) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s|%s|%d|%s|%s|%v|%s|%s|%v\n",
			r.FSM, r.Type, r.Kind, r.Pos, r.Object, r.States,
			r.Witness, r.WitnessConstraint, r.Steps)
	}
	return b.String()
}

// TestCheckerResumeAtEveryBoundary is the pipeline-level crash-injection
// property: kill the run at EVERY engine superstep boundary (across both the
// alias and dataflow phases), resume from the journal, and require the
// report stream byte-identical to an uninterrupted run. Also checks the
// journal-off ablation: checkpointing must not perturb results.
func TestCheckerResumeAtEveryBoundary(t *testing.T) {
	src := resumeSource(t)

	refFaults := faultpoint.New()
	refOpts := resumeOpts(t.TempDir())
	refOpts.Faults = refFaults
	ref, err := New(fsm.Builtins(), refOpts).CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := renderReports(ref.Reports)
	if len(ref.Reports) == 0 {
		t.Fatal("reference run found no reports; subject too small to mean anything")
	}
	if ref.Alias.Checkpoints == 0 || ref.Dataflow.Checkpoints == 0 {
		t.Fatalf("phases did not checkpoint: alias=%d dataflow=%d",
			ref.Alias.Checkpoints, ref.Dataflow.Checkpoints)
	}
	boundaries := refFaults.Count(faultpoint.EngineSuperstep)
	if boundaries < 4 {
		t.Fatalf("only %d superstep boundaries; subject too small for the kill sweep", boundaries)
	}

	// Journal-off ablation: identical reports.
	off := resumeOpts(t.TempDir())
	off.Journal = false
	ablation, err := New(fsm.Builtins(), off).CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReports(ablation.Reports); got != want {
		t.Fatalf("journal-off ablation changed reports:\n%s\nvs\n%s", got, want)
	}

	for k := 1; k <= boundaries; k++ {
		dir := t.TempDir()
		faults := faultpoint.New()
		faults.Arm(faultpoint.EngineSuperstep, k)
		opts := resumeOpts(dir)
		opts.Faults = faults
		if _, err := New(fsm.Builtins(), opts).CheckSource(src); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("k=%d: kill did not fire: %v", k, err)
		}
		ropts := resumeOpts(dir)
		ropts.Resume = true
		res, err := New(fsm.Builtins(), ropts).CheckSource(src)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got := renderReports(res.Reports); got != want {
			t.Fatalf("k=%d: resumed reports differ:\n%s\nvs\n%s", k, got, want)
		}
	}
}

// TestCheckerResumeTornJournal kills mid-journal-append. Tearing the very
// first record (the alias phase's baseline) leaves nothing durable, so
// resume must refuse rather than silently cold-start; tearing a later record
// resumes from the previous checkpoint with identical reports.
func TestCheckerResumeTornJournal(t *testing.T) {
	src := resumeSource(t)
	ref, err := New(fsm.Builtins(), resumeOpts(t.TempDir())).CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	want := renderReports(ref.Reports)

	t.Run("torn baseline refuses resume", func(t *testing.T) {
		dir := t.TempDir()
		faults := faultpoint.New()
		faults.Arm(faultpoint.JournalAppendMid, 1)
		opts := resumeOpts(dir)
		opts.Faults = faults
		if _, err := New(fsm.Builtins(), opts).CheckSource(src); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("kill did not fire: %v", err)
		}
		ropts := resumeOpts(dir)
		ropts.Resume = true
		if _, err := New(fsm.Builtins(), ropts).CheckSource(src); !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("resume over a record-less journal: %v", err)
		}
	})

	for _, k := range []int{2, 3} {
		dir := t.TempDir()
		faults := faultpoint.New()
		faults.Arm(faultpoint.JournalAppendMid, k)
		opts := resumeOpts(dir)
		opts.Faults = faults
		if _, err := New(fsm.Builtins(), opts).CheckSource(src); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("k=%d: kill did not fire: %v", k, err)
		}
		ropts := resumeOpts(dir)
		ropts.Resume = true
		res, err := New(fsm.Builtins(), ropts).CheckSource(src)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got := renderReports(res.Reports); got != want {
			t.Fatalf("k=%d: resumed reports differ", k)
		}
	}
}

func TestCheckerResumeMissingJournal(t *testing.T) {
	opts := resumeOpts(t.TempDir())
	opts.Resume = true
	_, err := New(fsm.Builtins(), opts).CheckSource(resumeSource(t))
	if !errors.Is(err, storage.ErrNoJournal) {
		t.Fatalf("resume of an empty workdir: %v", err)
	}
}

func TestCheckerResumeRequiresWorkDir(t *testing.T) {
	opts := resumeOpts("")
	opts.WorkDir = ""
	opts.Resume = true
	_, err := New(fsm.Builtins(), opts).CheckSource(resumeSource(t))
	if err == nil || !strings.Contains(err.Error(), "WorkDir") {
		t.Fatalf("resume without a workdir: %v", err)
	}
}

func TestCheckerResumeStaleJournal(t *testing.T) {
	src := resumeSource(t)
	dir := t.TempDir()
	if _, err := New(fsm.Builtins(), resumeOpts(dir)).CheckSource(src); err != nil {
		t.Fatal(err)
	}
	// A different property set means a different run: the journal tag
	// mismatches and resume must reject it instead of replaying checkpoints
	// into the wrong graph.
	ropts := resumeOpts(dir)
	ropts.Resume = true
	_, err := New(fsm.Builtins()[:1], ropts).CheckSource(src)
	if !errors.Is(err, engine.ErrStale) {
		t.Fatalf("resume under a different FSM set: %v", err)
	}
}

func TestCheckerResumeCorruptJournal(t *testing.T) {
	src := resumeSource(t)
	dir := t.TempDir()
	if _, err := New(fsm.Builtins(), resumeOpts(dir)).CheckSource(src); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "alias", storage.JournalName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ropts := resumeOpts(dir)
	ropts.Resume = true
	if _, err := New(fsm.Builtins(), ropts).CheckSource(src); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("resume over a mangled journal header: %v", err)
	}
}

// TestCheckerResumeCompletedRun re-resumes a run that already finished: both
// phase journals carry completed records, so resume restores the final
// graphs and reproduces the reports without recomputation.
func TestCheckerResumeCompletedRun(t *testing.T) {
	src := resumeSource(t)
	dir := t.TempDir()
	ref, err := New(fsm.Builtins(), resumeOpts(dir)).CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ropts := resumeOpts(dir)
	ropts.Resume = true
	res, err := New(fsm.Builtins(), ropts).CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderReports(res.Reports), renderReports(ref.Reports); got != want {
		t.Fatalf("re-resumed reports differ:\n%s\nvs\n%s", got, want)
	}
}
