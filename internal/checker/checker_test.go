package checker

import (
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/fsm"
)

func check(t *testing.T, src string, fsms ...*fsm.FSM) *Result {
	t.Helper()
	if len(fsms) == 0 {
		fsms = fsm.Builtins()
	}
	c := New(fsms, Options{WorkDir: t.TempDir()})
	res, err := c.CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func countKind(res *Result, k Kind) int {
	n := 0
	for _, r := range res.Reports {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// TestFigure3bEndToEnd reproduces the paper's §2 worked example: among the
// four paths of Fig. 3b, exactly one bug exists (the writer is created but
// not closed when y<=0), and the would-be write-after-nothing on the
// infeasible third path (x<0 && y>0) must NOT be reported.
func TestFigure3bEndToEnd(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var out: FileWriter = null;
  var o: FileWriter = null;
  var x: int = input();
  var y: int = x;
  if (x >= 0) {
    out = new FileWriter();
    o = out;
    y = y - 1;
  } else {
    y = y + 1;
  }
  if (y > 0) {
    out.write();
    o.close();
  }
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 1 {
		t.Fatalf("want exactly 1 report, got %d: %v", len(res.Reports), res.Reports)
	}
	r := res.Reports[0]
	if r.Kind != KindLeak || r.Type != "FileWriter" {
		t.Fatalf("unexpected report: %+v", r)
	}
	if res.TrackedObjects != 1 {
		t.Fatalf("tracked objects = %d", res.TrackedObjects)
	}
}

// TestFigure3bPathSensitivityMatters is the control experiment: the same
// program with the second conditional inverted (y <= 0) makes the
// write-then-no-close path feasible for x>=1... actually with y<=0 the
// events fire exactly when x-1<=0, i.e. x in {0,1}; closing happens there,
// and the leak path is x>=2. Either way a leak must be found, but no
// error-transition: write-after-close never happens on a feasible path.
func TestFigure3bNoErrorTransition(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var out: FileWriter = null;
  var x: int = input();
  if (x >= 0) {
    out = new FileWriter();
  }
  if (x < 0) {
    out.write();
  }
  return;
}`
	// write only happens when x<0, but the object exists only when x>=0:
	// the write event can never apply to the object, so the only defect is
	// the unconditional leak (never closed).
	res := check(t, src)
	if countKind(res, KindError) != 0 {
		t.Fatalf("infeasible write reported: %v", res.Reports)
	}
	if countKind(res, KindLeak) != 1 {
		t.Fatalf("want the leak: %v", res.Reports)
	}
}

func TestCleanProgramNoReports(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.write();
  w.close();
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("clean program flagged: %v", res.Reports)
	}
}

func TestWriteAfterClose(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  w.write();
  return;
}`
	res := check(t, src)
	if countKind(res, KindError) != 1 {
		t.Fatalf("write-after-close not reported: %v", res.Reports)
	}
}

func TestLeakThroughAlias(t *testing.T) {
	// The close happens through an alias; no leak must be reported.
	src := `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  var o: FileWriter = w;
  w.write();
  o.close();
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("alias-closed writer flagged: %v", res.Reports)
	}
}

func TestLeakThroughHeap(t *testing.T) {
	// Closing through a field load must count (store/alias/load grammar).
	src := `
type FileWriter;
type Box;
fun main() {
  var w: FileWriter = new FileWriter();
  var b: Box = new Box();
  b.fw = w;
  var o: FileWriter = b.fw;
  o.close();
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("heap-closed writer flagged: %v", res.Reports)
	}
}

func TestHeapFieldMismatchLeaks(t *testing.T) {
	// Closing an object loaded from a DIFFERENT field must not count.
	src := `
type FileWriter;
type Box;
fun main() {
  var w: FileWriter = new FileWriter();
  var w2: FileWriter = new FileWriter();
  var b: Box = new Box();
  b.fw = w;
  b.other = w2;
  var o: FileWriter = b.other;
  o.close();
  return;
}`
	res := check(t, src)
	// w leaks (only w2, via b.other, was closed).
	if countKind(res, KindLeak) != 1 {
		t.Fatalf("want 1 leak (w), got: %v", res.Reports)
	}
}

func TestInterproceduralClose(t *testing.T) {
	src := `
type FileWriter;
fun closeIt(f: FileWriter) {
  f.close();
  return;
}
fun main() {
  var w: FileWriter = new FileWriter();
  w.write();
  closeIt(w);
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("interprocedurally closed writer flagged: %v", res.Reports)
	}
}

func TestInterproceduralLeak(t *testing.T) {
	src := `
type FileWriter;
fun open(): FileWriter {
  var w: FileWriter = new FileWriter();
  return w;
}
fun main() {
  var f: FileWriter = open();
  f.write();
  return;
}`
	res := check(t, src)
	if countKind(res, KindLeak) != 1 {
		t.Fatalf("escaped writer must leak: %v", res.Reports)
	}
}

func TestContextSensitivityTwoCallers(t *testing.T) {
	// Helper opens a writer; one caller closes it, the other leaks it.
	// Context-sensitive cloning must blame only the leaking clone.
	src := `
type FileWriter;
fun open(): FileWriter {
  var w: FileWriter = new FileWriter();
  return w;
}
fun good() {
  var a: FileWriter = open();
  a.close();
  return;
}
fun bad() {
  var b: FileWriter = open();
  b.write();
  return;
}
fun main() {
  good();
  bad();
  return;
}`
	res := check(t, src)
	if got := countKind(res, KindLeak); got != 1 {
		t.Fatalf("want exactly 1 leak (the bad() clone), got %d: %v", got, res.Reports)
	}
}

func TestLockMisorder(t *testing.T) {
	src := `
type Lock;
fun main() {
  var l: Lock = new Lock();
  l.unlock();
  l.lock();
  return;
}`
	res := check(t, src)
	if countKind(res, KindError) != 1 {
		t.Fatalf("lock misorder not reported: %v", res.Reports)
	}
}

func TestLockBalanced(t *testing.T) {
	src := `
type Lock;
fun main() {
  var l: Lock = new Lock();
  l.lock();
  l.unlock();
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("balanced lock flagged: %v", res.Reports)
	}
}

func TestUncaughtExceptionReported(t *testing.T) {
	src := `
type Exception;
fun risky() {
  throw new Exception();
}
fun main() {
  risky();
  return;
}`
	res := check(t, src)
	if countKind(res, KindLeak) != 1 {
		t.Fatalf("uncaught exception not reported: %v", res.Reports)
	}
}

func TestCaughtExceptionClean(t *testing.T) {
	src := `
type Exception;
fun risky() {
  throw new Exception();
}
fun main() {
  try {
    risky();
  } catch (e) {
    return;
  }
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("caught exception flagged: %v", res.Reports)
	}
}

func TestSocketLeakOnExceptionPath(t *testing.T) {
	// Shape of the paper's Fig. 1/8a: the old socket is closed only on the
	// non-exception path; an exception between open and close leaks it.
	src := `
type Socket;
type Exception;
fun mayThrow() {
  var x: int = input();
  if (x > 0) {
    throw new Exception();
  }
  return;
}
fun main() {
  var s: Socket = new Socket();
  s.bind();
  try {
    mayThrow();
    s.close();
  } catch (e) {
    return;
  }
  return;
}`
	res := check(t, src)
	leaks := 0
	for _, r := range res.Reports {
		if r.Kind == KindLeak && r.Type == "Socket" {
			leaks++
		}
	}
	if leaks != 1 {
		t.Fatalf("socket leak on exception path not reported: %v", res.Reports)
	}
}

func TestSocketProperlyClosedBothPaths(t *testing.T) {
	src := `
type Socket;
type Exception;
fun mayThrow() {
  var x: int = input();
  if (x > 0) {
    throw new Exception();
  }
  return;
}
fun main() {
  var s: Socket = new Socket();
  s.bind();
  try {
    mayThrow();
    s.close();
  } catch (e) {
    s.close();
  }
  return;
}`
	res := check(t, src)
	for _, r := range res.Reports {
		if r.Type == "Socket" {
			t.Fatalf("socket closed on both paths flagged: %v", res.Reports)
		}
	}
}

func TestCustomFSMViaBind(t *testing.T) {
	f, err := fsm.New("io2", "LogFile", "Init", "Open", "Close")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetInit("Init"); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAccept("Init", "Close"); err != nil {
		t.Fatal(err)
	}
	for _, tr := range [][3]string{{"Init", "new", "Open"}, {"Open", "append", "Open"}, {"Open", "close", "Close"}} {
		if err := f.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	src := `
type LogFile;
fun main() {
  var l: LogFile = new LogFile();
  l.append();
  return;
}`
	c := New([]*fsm.FSM{f}, Options{WorkDir: t.TempDir()})
	res, err := c.CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(res, KindLeak) != 1 {
		t.Fatalf("custom FSM leak not found: %v", res.Reports)
	}
}

func TestLoopedWritesClean(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  var i: int = 0;
  while (i < 10) {
    w.write();
    i = i + 1;
  }
  w.close();
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("looped writer flagged: %v", res.Reports)
	}
}

func TestStatsPopulated(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  return;
}`
	res := check(t, src)
	if res.Alias.Vertices == 0 || res.Alias.EdgesBefore == 0 {
		t.Fatalf("alias stats empty: %+v", res.Alias)
	}
	if res.Dataflow.EdgesAfter == 0 {
		t.Fatalf("dataflow stats empty: %+v", res.Dataflow)
	}
	if res.Flows == 0 {
		t.Fatal("no flows extracted")
	}
}

func TestWitnessStepsExplainBranches(t *testing.T) {
	src := `
type Socket;
fun main() {
  var s: Socket = new Socket();
  s.bind();
  var n: int = input();
  if (n > 7) {
    s.close();
  }
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 1 {
		t.Fatalf("reports: %v", res.Reports)
	}
	steps := res.Reports[0].Steps
	if len(steps) == 0 {
		t.Fatal("no witness steps")
	}
	found := false
	for _, s := range steps {
		if s.Pos.Line == 7 && strings.Contains(s.Desc, "false branch") && strings.Contains(s.Desc, "n > 7") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak witness should take the false branch of the guard: %v", steps)
	}
}

func TestWitnessStepsCrossCalls(t *testing.T) {
	src := `
type FileWriter;
fun maybeClose(w: FileWriter, n: int) {
  if (n > 0) {
    w.close();
  }
  return;
}
fun main() {
  var w: FileWriter = new FileWriter();
  maybeClose(w, input());
  return;
}`
	res := check(t, src)
	if len(res.Reports) != 1 {
		t.Fatalf("reports: %v", res.Reports)
	}
	var hasCall bool
	for _, s := range res.Reports[0].Steps {
		if strings.Contains(s.Desc, "call maybeClose") || strings.Contains(s.Desc, "return from maybeClose") {
			hasCall = true
		}
	}
	if !hasCall {
		t.Fatalf("witness should cross the call: %v", res.Reports[0].Steps)
	}
}

// TestEscapeSuppressesLeakNotError pins the ownership-transfer rule: an
// object returned (directly or through a field of a returned container) by
// an entry function — one nothing in the unit calls — escapes to an unseen
// caller, so "still Open at exit" is that caller's leak to find, not ours.
// The same object leaked by an in-unit caller, or driven into an error
// state before escaping, is still reported.
func TestEscapeSuppressesLeakNotError(t *testing.T) {
	t.Run("direct return escapes", func(t *testing.T) {
		res := check(t, `
type FileWriter;
fun producer(): FileWriter {
  var w: FileWriter = new FileWriter();
  w.write();
  return w;
}
fun main() {
  return;
}`)
		if len(res.Reports) != 0 {
			t.Fatalf("escaping object flagged: %v", res.Reports)
		}
	})

	t.Run("field of returned container escapes", func(t *testing.T) {
		res := check(t, `
type FileWriter;
type Box;
fun wrap(): Box {
  var w: FileWriter = new FileWriter();
  w.write();
  var b: Box = new Box();
  b.held = w;
  return b;
}
fun main() {
  return;
}`)
		if len(res.Reports) != 0 {
			t.Fatalf("field-escaping object flagged: %v", res.Reports)
		}
	})

	t.Run("in-unit caller still leaks", func(t *testing.T) {
		res := check(t, `
type FileWriter;
fun producer(): FileWriter {
  var w: FileWriter = new FileWriter();
  w.write();
  return w;
}
fun main() {
  var w: FileWriter = producer();
  w.write();
  return;
}`)
		if countKind(res, KindLeak) != 1 {
			t.Fatalf("in-unit leak lost: %v", res.Reports)
		}
	})

	t.Run("error state survives escape", func(t *testing.T) {
		res := check(t, `
type FileWriter;
fun producer(): FileWriter {
  var w: FileWriter = new FileWriter();
  w.close();
  w.write();
  return w;
}
fun main() {
  return;
}`)
		if countKind(res, KindError) == 0 {
			t.Fatalf("error on escaping object suppressed: %v", res.Reports)
		}
		if countKind(res, KindLeak) != 0 {
			t.Fatalf("leak on escaping object flagged: %v", res.Reports)
		}
	})
}
