package checker

import "testing"

// TestSequentialSameTypeResources regresses a bug where event items were
// ordered by method name instead of statement position, letting a second
// socket's lifecycle events be consumed by the first socket's statements.
func TestSequentialSameTypeResources(t *testing.T) {
	src := `
type Socket;
type FileWriter;
fun closeWriter(w: FileWriter) { w.close(); return; }
fun work(cfg: int) {
  var s1: Socket = new Socket();
  s1.bind();
  s1.accept();
  s1.close();
  var w: FileWriter = new FileWriter();
  w.write();
  closeWriter(w);
  var s2: Socket = new Socket();
  s2.bind();
  s2.accept();
  s2.close();
  var acc: int = cfg;
  if (acc > 8) { acc = acc + 1; }
  return;
}
fun main() { work(input()); return; }`
	res := check(t, src)
	if len(res.Reports) != 0 {
		t.Fatalf("clean double-socket flagged: %v", res.Reports)
	}
}
