// Package checker implements Grapple's three-phase workflow (paper §2.2):
// phase 1 computes a fully context-sensitive, path-sensitive alias closure;
// phase 2 computes the path-sensitive dataflow/typestate closure, consulting
// phase 1's aliasing results held in memory; phase 3 checks the composed
// transition relations of every allocation-to-exit flow against the FSM
// specifications and emits bug reports.
package checker

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/grapple-system/grapple/internal/analysis"
	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/pgraph"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
	"github.com/grapple-system/grapple/internal/trace"
)

// PruneMode controls the pre-analysis infeasible-branch pruning that runs
// before CFET construction. The zero value enables it.
type PruneMode uint8

// Prune modes.
const (
	// PruneDefault is the zero value: pruning on.
	PruneDefault PruneMode = iota
	// PruneOn explicitly enables pruning.
	PruneOn
	// PruneOff disables pruning (every branch splits the CFET).
	PruneOff
)

// Enabled reports whether the mode turns pruning on.
func (m PruneMode) Enabled() bool { return m != PruneOff }

// SliceMode controls property-relevance slicing: before CFET construction,
// an Andersen-style points-to pass and the relevance slicer
// (internal/analysis) decide which functions and branches can possibly
// matter to the checked FSM properties; everything else is skipped. The
// zero value enables it.
type SliceMode uint8

// Slice modes.
const (
	// SliceDefault is the zero value: slicing on.
	SliceDefault SliceMode = iota
	// SliceOn explicitly enables slicing.
	SliceOn
	// SliceOff disables slicing (every function and branch is encoded).
	SliceOff
)

// Enabled reports whether the mode turns slicing on.
func (m SliceMode) Enabled() bool { return m != SliceOff }

// Options configures a checking run.
type Options struct {
	// WorkDir holds the engine's partition files; a temp dir when empty.
	WorkDir string
	// UnrollDepth is the static loop-unroll bound (default 2).
	UnrollDepth int
	// CFET tunes ICFET construction.
	CFET cfet.Options
	// Clone tunes context cloning.
	Clone pgraph.Options
	// Dataflow tunes phase-2 graph generation.
	Dataflow pgraph.DataflowOptions
	// Engine tunes both engine runs.
	Engine engine.Options
	// Bind maps extra object type names to FSM names (an FSM always applies
	// to its own Type).
	Bind map[string]string
	// RecordPointsTo retains the phase-1 points-to facts on the Result so
	// callers can ask "what objects does a variable point to under a
	// particular context?" — the query class the paper's cloning-based
	// design exists to answer (§2.1).
	RecordPointsTo bool
	// DumpDOT, when non-empty, writes the generated program graphs as
	// Graphviz files (alias.dot, dataflow.dot) into that directory.
	DumpDOT string
	// Prune controls constant-driven infeasible-branch pruning (default on):
	// the pre-analysis (internal/analysis) proves branch conditions constant
	// and CFET construction skips the dead arms. Reports are unaffected —
	// only statically-impossible subtrees are dropped — but the tree, and
	// everything downstream of it, is smaller.
	Prune PruneMode
	// Slice controls property-relevance slicing (default on): functions that
	// can never touch an object of a checked FSM's type (and whose scalar
	// returns no kept caller observes) collapse to stubs, and branches whose
	// both arms are property-irrelevant do not split the CFET. Verdicts are
	// preserved (docs/slicing.md); only the trees and the context graph
	// shrink. Slicing is skipped when the checker has no FSMs or when
	// RecordPointsTo is set — the points-to query class spans ALL variables,
	// tracked or not, so sliced facts would be incomplete.
	Slice SliceMode
	// Journal checkpoints both engine phases' superstep state to per-phase
	// run journals under WorkDir (docs/resume.md) so a crashed or killed run
	// can be continued with Resume. Useless (but harmless) without a
	// persistent WorkDir.
	Journal bool
	// Resume continues a previously journaled run from WorkDir instead of
	// starting cold, replaying each phase from its last durable checkpoint.
	// It requires a non-empty WorkDir and implies Journal. A missing alias
	// journal is an error wrapping storage.ErrNoJournal, and a journal from
	// a different subject or property set is rejected with engine.ErrStale —
	// resume never silently restarts from scratch.
	Resume bool
	// JournalEvery checkpoints every n supersteps (default 1: every
	// boundary).
	JournalEvery int
	// Faults injects deterministic crash points into the engines and the
	// journal write path (crash-injection tests only).
	Faults *faultpoint.Set
	// Trace, when non-nil, receives a span per pipeline phase (pre-analysis,
	// slicing, CFET build, context cloning, both engine closures, FSM
	// checking) and is threaded into both engines for superstep and storage
	// events. Tracing is observation only: it never changes reports.
	Trace *trace.Recorder
	// TraceTID is the trace thread lane this checker's events land on.
	TraceTID uint64
	// Progress, when non-nil, tracks the current phase and engine supersteps
	// for the heartbeat and status.json machinery. Observation only.
	Progress *trace.Progress
}

// PointsToFact is one phase-1 result: under clone Ctx of Method, variable
// Var (at CFET node Node) may reference the object allocated at ObjPos.
type PointsToFact struct {
	Ctx     uint32
	Method  string
	Var     string
	Node    uint64
	ObjType string
	ObjPos  lang.Pos
	// Conditional is true when the flow holds only under a nonempty path
	// constraint.
	Conditional bool
	// Constraint renders that path constraint ("true" when empty).
	Constraint string
}

// Kind classifies a warning.
type Kind uint8

// Warning kinds.
const (
	// KindError: some feasible event sequence drives the object into the
	// FSM's error state (e.g. write after close, unlock before lock).
	KindError Kind = iota
	// KindLeak: some feasible path reaches program exit with the object in
	// a non-accepting state (e.g. a never-closed socket).
	KindLeak
)

func (k Kind) String() string {
	if k == KindError {
		return "error-transition"
	}
	return "leak"
}

// WitnessStep is one step of a human-readable witness path: a source
// position plus what happens there (branch taken, call made, return).
type WitnessStep struct {
	Pos  lang.Pos
	Desc string
}

func (s WitnessStep) String() string {
	return fmt.Sprintf("%s: %s", s.Pos, s.Desc)
}

// Report is one warning.
type Report struct {
	FSM    string
	Type   string
	Kind   Kind
	Pos    lang.Pos
	Object string
	// States are the offending FSM states reachable at exit.
	States []string
	// Witness is the path encoding of one offending flow, and
	// WitnessConstraint its decoded path constraint.
	Witness           string
	WitnessConstraint string
	// Steps is the witness rendered as source-level steps (branches taken,
	// calls crossed) — the paper's "efficiently recover a path" (§1),
	// surfaced to the developer.
	Steps []WitnessStep
}

func (r Report) String() string {
	return fmt.Sprintf("[%s] %s %s at %s: exit states %v", r.FSM, r.Kind, r.Type, r.Pos, r.States)
}

// PhaseStats captures one engine run for the evaluation tables.
type PhaseStats struct {
	Vertices uint32
	// CFETPaths is the number of encoded CFET paths (leaves) the phase's
	// decoding works against; branch pruning shrinks it.
	CFETPaths int
	// PrunedBranches counts branch sites the pre-analysis resolved during
	// CFET construction (0 when Options.Prune is off).
	PrunedBranches int
	// SlicedFunctions counts methods the property-relevance slicer
	// collapsed to stubs (0 when Options.Slice is off).
	SlicedFunctions int
	// SlicedBranches counts branch sites skipped because both arms were
	// property-irrelevant (0 when Options.Slice is off).
	SlicedBranches int
	engine.Stats
}

// Result is the outcome of a checking run.
type Result struct {
	Reports  []Report
	Alias    PhaseStats
	Dataflow PhaseStats
	// GenTime is graph/ICFET generation (the paper's "preprocessing").
	GenTime time.Duration
	// ComputeTime covers both engine runs plus phase 3.
	ComputeTime time.Duration
	Breakdown   metrics.Snapshot
	// TrackedObjects is the number of objects with FSMs.
	TrackedObjects int
	// Flows is the number of phase-1 flowsTo facts extracted.
	Flows int
	// PointsTo holds the recorded phase-1 facts (Options.RecordPointsTo).
	PointsTo []PointsToFact
	// Passes is the pre-analysis per-pass cost breakdown (empty when
	// Options.Prune is off).
	Passes []metrics.PassStat
	// CondsDecided is how many branch conditions the pre-analysis proved
	// constant (not all of them are reached during CFET construction).
	CondsDecided int64
}

// QueryPointsTo returns the recorded facts for a variable of a method
// (every clone, every block), answering the §2.1 query class. It requires
// Options.RecordPointsTo.
func (r *Result) QueryPointsTo(method, varName string) []PointsToFact {
	var out []PointsToFact
	for _, f := range r.PointsTo {
		if f.Method == method && f.Var == varName {
			out = append(out, f)
		}
	}
	return out
}

// Checker runs the pipeline for a fixed set of FSM properties.
type Checker struct {
	FSMs []*fsm.FSM
	Opts Options
}

// New builds a checker.
func New(fsms []*fsm.FSM, opts Options) *Checker {
	if opts.UnrollDepth <= 0 {
		opts.UnrollDepth = 2
	}
	return &Checker{FSMs: fsms, Opts: opts}
}

// journaling reports whether the engine phases should checkpoint.
func (c *Checker) journaling() bool { return c.Opts.Journal || c.Opts.Resume }

// journalTag fingerprints one phase's input — phase name, graph shape, CFET
// path count, and the property set — so Resume rejects a journal left behind
// by a different subject, property group, or phase (engine.ErrStale) instead
// of replaying checkpoints into the wrong graph.
func (c *Checker) journalTag(phase string, numVerts uint32, numEdges, paths int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", phase, numVerts, numEdges, paths)
	for _, f := range c.FSMs {
		fmt.Fprintf(h, "|%s", f.Name)
	}
	return h.Sum64()
}

// phaseEngineOpts lowers the checker's journal settings onto one phase's
// engine options.
func (c *Checker) phaseEngineOpts(base engine.Options, phase string, numVerts uint32, numEdges, paths int) engine.Options {
	if c.journaling() {
		base.Journal = true
		base.JournalEvery = c.Opts.JournalEvery
		base.JournalTag = c.journalTag(phase, numVerts, numEdges, paths)
		base.Faults = c.Opts.Faults
	}
	return base
}

// hasJournal reports whether dir holds a run journal. Resume uses it to pick
// up where the crash happened: a run killed during the alias phase never
// created the dataflow journal, so that phase legitimately starts cold
// (journaled, so a later kill is resumable there too).
func hasJournal(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, storage.JournalName))
	return err == nil
}

func (c *Checker) fsmFor(typ string) *fsm.FSM {
	for _, f := range c.FSMs {
		if f.Type == typ {
			return f
		}
	}
	if name, ok := c.Opts.Bind[typ]; ok {
		for _, f := range c.FSMs {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// CheckSource parses, lowers and checks a MiniLang compilation unit.
func (c *Checker) CheckSource(src string) (*Result, error) {
	return c.CheckSourceContext(context.Background(), src)
}

// CheckSourceContext is CheckSource with cooperative cancellation: the
// engine's fixpoint loops observe ctx, so a deadline or cancel aborts the
// run between partition-pair iterations (the batch scheduler's per-instance
// timeout mechanism).
func (c *Checker) CheckSourceContext(ctx context.Context, src string) (*Result, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		return nil, fmt.Errorf("resolve: %w", err)
	}
	p, err := ir.Lower(info, ir.Options{UnrollDepth: c.Opts.UnrollDepth})
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return c.CheckIRContext(ctx, p)
}

// CheckIR checks a lowered program.
func (c *Checker) CheckIR(p *ir.Program) (*Result, error) {
	return c.CheckIRContext(context.Background(), p)
}

// CheckIRContext checks a lowered program under a cancellation context.
func (c *Checker) CheckIRContext(ctx context.Context, p *ir.Program) (*Result, error) {
	prep, err := c.PrepareIR(ctx, p)
	if err != nil {
		return nil, err
	}
	return c.CheckPrepared(ctx, prep)
}

// Prepared is the FSM-independent front half of a subject's analysis:
// the frontend structures (IR, ICFET, context tree, alias graph) plus the
// phase-1 alias closure's flowsTo facts, everything phase 2 reads. It is
// immutable once built, so many property groups of the same subject can
// share one Prepared — including concurrently — instead of each re-running
// the frontend and the alias fixpoint. It is only valid for CheckPrepared
// on a Checker whose Options match the preparing Checker's (the FSM set
// may differ; that is the point).
type Prepared struct {
	ic    *cfet.ICFET
	pr    *pgraph.Program
	ag    *pgraph.AliasGraph
	flows pgraph.AliasResult

	// escaped holds the allocation sites whose objects may leave the unit
	// through an entry function's return value; leak verdicts on them are
	// the unseen caller's to make (checkTyped skips them).
	escaped map[int32]bool

	// phase-1 halves of the eventual Result, copied into every
	// CheckPrepared output.
	alias        PhaseStats
	genTime      time.Duration
	computeTime  time.Duration
	breakdown    metrics.Snapshot
	flowCount    int
	pointsTo     []PointsToFact
	passes       []metrics.PassStat
	condsDecided int64
}

// PrepareSource parses, lowers and prepares a MiniLang compilation unit.
func (c *Checker) PrepareSource(ctx context.Context, src string) (*Prepared, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		return nil, fmt.Errorf("resolve: %w", err)
	}
	p, err := ir.Lower(info, ir.Options{UnrollDepth: c.Opts.UnrollDepth})
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return c.PrepareIR(ctx, p)
}

// PrepareIR runs the frontend (pre-analysis, ICFET, context tree, alias
// graph) and the phase-1 alias closure over a lowered program. The alias
// engine's partitions are deleted before returning — the flowsTo facts it
// produced are held in memory, which is all phase 2 consults (§2.2).
func (c *Checker) PrepareIR(ctx context.Context, p *ir.Program) (*Prepared, error) {
	workDir := c.Opts.WorkDir
	if c.Opts.Resume && workDir == "" {
		return nil, fmt.Errorf("checker: Resume requires a persistent WorkDir")
	}
	if workDir == "" {
		dir, err := os.MkdirTemp("", "grapple-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	prep := &Prepared{}

	// --- Frontend: pre-analysis + ICFET (index) + context tree + alias graph. ---
	c.Opts.Progress.SetPhase("frontend")
	genStart := time.Now()
	cfetOpts := c.Opts.CFET
	if c.Opts.Prune.Enabled() && cfetOpts.BranchVerdict == nil {
		sp := c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "pre-analysis")
		pre, err := analysis.Run(p, analysis.PruneAnalyzers())
		if err != nil {
			return nil, fmt.Errorf("pre-analysis: %w", err)
		}
		cfetOpts.BranchVerdict = pre.BranchVerdict
		prep.passes = pre.Passes.Passes()
		prep.condsDecided, _ = pre.Prune.Snapshot()
		sp.End(trace.Args{"condsDecided": prep.condsDecided})
	}
	cg := callgraph.Build(p)
	cloneOpts := c.Opts.Clone
	var pts *analysis.PointsToResult
	if c.Opts.Slice.Enabled() && len(c.FSMs) > 0 && !c.Opts.RecordPointsTo &&
		cfetOpts.SliceFunc == nil && cfetOpts.SliceBranch == nil {
		tracked := map[string]bool{}
		for _, f := range c.FSMs {
			tracked[f.Type] = true
		}
		for typ, name := range c.Opts.Bind {
			for _, f := range c.FSMs {
				if f.Name == name {
					tracked[typ] = true
				}
			}
		}
		sp := c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "points-to+slice")
		pts = analysis.SolvePointsTo(p, cg)
		rel := analysis.ComputeRelevance(p, cg, pts, tracked)
		drop := func(name string) bool { return !rel.KeepFunc(name) }
		cfetOpts.SliceFunc = drop
		cfetOpts.SliceBranch = rel.InertBranch
		cloneOpts.Skip = drop
		sp.End(nil)
	}
	if len(c.FSMs) > 0 {
		// Objects handed to an unseen caller through an entry function's
		// return are not leak candidates at our exit — the caller owns them
		// now. Entry functions are the call-graph roots: for a whole program
		// that is main (which returns nothing, so nothing escapes); for a
		// library-style unit it is every uncalled exported constructor.
		if pts == nil {
			pts = analysis.SolvePointsTo(p, cg)
		}
		prep.escaped = pts.EscapingSites(cg.Roots())
		// Objects shared with a spawned task are co-owned: the goroutine may
		// still release them after the spawner's exit, so "open at exit" is
		// not evidence of a leak for them either. Programs without spawn
		// statements get an empty set and identical verdicts.
		for site := range analysis.ComputeMHP(pts, cg).SharedSites {
			prep.escaped[site] = true
		}
	}
	tab := symbolic.NewTable()
	sp := c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "cfet-build")
	ic, err := cfet.Build(p, tab, cfetOpts)
	if err != nil {
		return nil, fmt.Errorf("icfet: %w", err)
	}
	sp.End(trace.Args{"paths": ic.PathCount(), "prunedBranches": ic.PrunedBranches()})
	sp = c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "context-clone")
	pr := pgraph.NewProgram(p, cg, ic, cloneOpts)
	ag := pgraph.BuildAlias(pr)
	sp.End(trace.Args{"vertices": ag.NumVerts, "edges": len(ag.Edges)})
	// The pointer grammar interns one store/load label pair per distinct
	// field; a program with enough fields to exhaust the 16-bit label space
	// must fail with the grammar's sized diagnostic, not analyze nonsense
	// NoLabel edges.
	if err := ag.Ptr.G.Err(); err != nil {
		return nil, err
	}
	prep.ic, prep.pr, prep.ag = ic, pr, ag
	prep.genTime = time.Since(genStart)
	if c.Opts.DumpDOT != "" {
		if err := dumpDOT(filepath.Join(c.Opts.DumpDOT, "alias.dot"), func(w *os.File) error {
			return ag.WriteAliasDOT(w, pr, ic)
		}); err != nil {
			return nil, err
		}
	}

	computeStart := time.Now()
	bd := &metrics.Breakdown{}

	// --- Phase 1: path-sensitive alias closure. ---
	c.Opts.Progress.SetPhase("alias")
	aliasOpts := c.Opts.Engine
	aliasOpts.Dir = filepath.Join(workDir, "alias")
	aliasOpts.UseRel = false
	aliasOpts.Trace = c.Opts.Trace
	aliasOpts.TraceTID = c.Opts.TraceTID
	aliasOpts.Progress = c.Opts.Progress
	aliasOpts = c.phaseEngineOpts(aliasOpts, "alias", ag.NumVerts, len(ag.Edges), ic.PathCount())
	aliasEngine := engine.New(ic, ag.Ptr.G, aliasOpts, bd)
	sp = c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "phase.alias")
	var aliasStats *engine.Stats
	if c.Opts.Resume {
		aliasStats, err = aliasEngine.ResumeContext(ctx, ag.NumVerts)
	} else {
		aliasStats, err = aliasEngine.RunContext(ctx, ag.Edges, ag.NumVerts)
	}
	if err != nil {
		return nil, fmt.Errorf("alias phase: %w", err)
	}
	sp.End(trace.Args{"iterations": aliasStats.Iterations, "edges": aliasStats.EdgesAfter})
	prep.alias = PhaseStats{
		Vertices: ag.NumVerts, Stats: *aliasStats,
		CFETPaths: ic.PathCount(), PrunedBranches: ic.PrunedBranches(),
		SlicedFunctions: ic.SlicedFunctions(), SlicedBranches: ic.SlicedBranches(),
	}

	// Extract flowsTo facts; held in memory for phase 2 (paper §2.2).
	sp = c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "extract-flows")
	flows, nflows, err := extractFlows(aliasEngine, ag, ic)
	if err != nil {
		return nil, err
	}
	sp.End(trace.Args{"flows": nflows})
	prep.flows = flows
	prep.flowCount = nflows
	if c.Opts.RecordPointsTo {
		prep.pointsTo = pointsToFacts(pr, ag, flows, ic)
	}
	prep.computeTime = time.Since(computeStart)
	prep.breakdown = bd.Snapshot()
	return prep, nil
}

// CheckPrepared runs phases 2 and 3 (dataflow/typestate closure plus FSM
// checking) against a prepared subject, using this Checker's FSM set.
func (c *Checker) CheckPrepared(ctx context.Context, prep *Prepared) (*Result, error) {
	workDir := c.Opts.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "grapple-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	ic, pr, ag := prep.ic, prep.pr, prep.ag
	res := &Result{
		Alias:        prep.alias,
		GenTime:      prep.genTime,
		Flows:        prep.flowCount,
		PointsTo:     prep.pointsTo,
		Passes:       prep.passes,
		CondsDecided: prep.condsDecided,
	}
	bd := &metrics.Breakdown{}

	// --- Phase 2: path-sensitive dataflow/typestate closure. ---
	c.Opts.Progress.SetPhase("dataflow-build")
	genStart := time.Now()
	sp := c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "dataflow-build")
	dg := pgraph.BuildDataflow(pr, prep.flows, ag, c.fsmFor, c.Opts.Dataflow)
	sp.End(trace.Args{"vertices": dg.NumVerts, "edges": len(dg.Edges), "tracked": len(dg.Tracked)})
	res.GenTime += time.Since(genStart)
	res.TrackedObjects = len(dg.Tracked)
	if c.Opts.DumpDOT != "" {
		if err := dumpDOT(filepath.Join(c.Opts.DumpDOT, "dataflow.dot"), func(w *os.File) error {
			return dg.WriteDataflowDOT(w, ic)
		}); err != nil {
			return nil, err
		}
	}

	computeStart := time.Now()
	c.Opts.Progress.SetPhase("dataflow")
	dfOpts := c.Opts.Engine
	dfOpts.Dir = filepath.Join(workDir, "dataflow")
	dfOpts.UseRel = true
	dfOpts.Trace = c.Opts.Trace
	dfOpts.TraceTID = c.Opts.TraceTID
	dfOpts.Progress = c.Opts.Progress
	dfOpts = c.phaseEngineOpts(dfOpts, "dataflow", dg.NumVerts, len(dg.Edges), ic.PathCount())
	dfEngine := engine.New(ic, dg.D.G, dfOpts, bd)
	sp = c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "phase.dataflow")
	var dfStats *engine.Stats
	var err error
	if c.Opts.Resume && hasJournal(dfOpts.Dir) {
		dfStats, err = dfEngine.ResumeContext(ctx, dg.NumVerts)
	} else {
		dfStats, err = dfEngine.RunContext(ctx, dg.Edges, dg.NumVerts)
	}
	if err != nil {
		return nil, fmt.Errorf("dataflow phase: %w", err)
	}
	sp.End(trace.Args{"iterations": dfStats.Iterations, "edges": dfStats.EdgesAfter})
	res.Dataflow = PhaseStats{
		Vertices: dg.NumVerts, Stats: *dfStats,
		CFETPaths: ic.PathCount(), PrunedBranches: ic.PrunedBranches(),
		SlicedFunctions: ic.SlicedFunctions(), SlicedBranches: ic.SlicedBranches(),
	}

	// --- Phase 3: FSM checking of source->exit relations. ---
	c.Opts.Progress.SetPhase("fsm-check")
	sp = c.Opts.Trace.Start(c.Opts.TraceTID, "checker", "fsm-check")
	res.Reports, err = checkTyped(dfEngine, dg, ic, prep.escaped)
	if err != nil {
		return nil, err
	}
	sp.End(trace.Args{"reports": len(res.Reports)})
	res.ComputeTime = prep.computeTime + time.Since(computeStart)
	s := bd.Snapshot()
	res.Breakdown = metrics.Snapshot{
		IO:      prep.breakdown.IO + s.IO,
		Decode:  prep.breakdown.Decode + s.Decode,
		Solve:   prep.breakdown.Solve + s.Solve,
		Compute: prep.breakdown.Compute + s.Compute,
	}
	return res, nil
}

// dumpDOT writes one Graphviz file.
func dumpDOT(path string, write func(*os.File) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// extractFlows turns phase-1 flowsTo edges into per-object alias facts and
// counts distinct pointees per variable instance (for must-alias upgrades).
func extractFlows(en *engine.Engine, ag *pgraph.AliasGraph, ic *cfet.ICFET) (pgraph.AliasResult, int, error) {
	flows := pgraph.AliasResult{
		Flows:    map[pgraph.ObjID][]pgraph.FlowTarget{},
		Pointees: map[pgraph.VarKey]int{},
	}
	varObjs := map[pgraph.VarKey]map[pgraph.ObjID]bool{}
	n := 0
	err := en.ForEach(func(e *storage.Edge) bool {
		if e.Label != ag.Ptr.FlowsTo {
			return true
		}
		obj, ok := ag.RevObj[e.Src]
		if !ok {
			return true
		}
		if int(e.Dst) >= len(ag.RevVar) || ag.RevVar[e.Dst] == nil {
			return true
		}
		vk := *ag.RevVar[e.Dst]
		flows.Flows[obj] = append(flows.Flows[obj], pgraph.FlowTarget{
			Var: vk, Enc: e.Enc.Clone(),
		})
		if varObjs[vk] == nil {
			varObjs[vk] = map[pgraph.ObjID]bool{}
		}
		varObjs[vk][obj] = true
		n++
		return true
	})
	for vk, objs := range varObjs {
		flows.Pointees[vk] = len(objs)
	}
	_ = ic
	return flows, n, err
}

// pointsToFacts converts the in-memory alias results into queryable facts.
func pointsToFacts(pr *pgraph.Program, ag *pgraph.AliasGraph, flows pgraph.AliasResult, ic *cfet.ICFET) []PointsToFact {
	var out []PointsToFact
	objByID := map[pgraph.ObjID]pgraph.ObjInfo{}
	for _, o := range ag.Objects {
		objByID[o.ID] = o
	}
	for objID, targets := range flows.Flows {
		info := objByID[objID]
		for _, t := range targets {
			conjText := "true"
			conditional := false
			if conj, err := ic.Decode(t.Enc); err == nil && len(conj) > 0 {
				conditional = true
				conjText = conj.String(ic.Syms)
			}
			out = append(out, PointsToFact{
				Ctx:         t.Var.Ctx,
				Method:      pr.Method(t.Var.Ctx).Name,
				Var:         t.Var.Name,
				Node:        t.Var.Node,
				ObjType:     info.Type,
				ObjPos:      info.Pos,
				Conditional: conditional,
				Constraint:  conjText,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		if a.Ctx != b.Ctx {
			return a.Ctx < b.Ctx
		}
		return a.Node < b.Node
	})
	return out
}

// checkTyped inspects every closed source->exit edge (phase 3).
// explainWitness renders a path encoding as forward source-level steps:
// each interval contributes the branches taken between its endpoints, each
// call/return element the frame crossing.
func explainWitness(ic *cfet.ICFET, enc cfet.Enc) []WitnessStep {
	var steps []WitnessStep
	for _, el := range enc {
		switch el.Kind {
		case cfet.KInterval:
			if int(el.Method) >= len(ic.Methods) {
				continue
			}
			m := ic.Methods[el.Method]
			// Walk child-to-ancestor collecting branch decisions, then
			// reverse into execution order.
			var rev []WitnessStep
			cur := el.End
			for cur != el.Start && cur != 0 {
				parent := cfet.Parent(cur)
				pn := m.Nodes[parent]
				if pn != nil && pn.HasCond {
					branch := "false"
					if cfet.IsTrueChild(cur) {
						branch = "true"
					}
					rev = append(rev, WitnessStep{
						Pos:  pn.CondPos,
						Desc: fmt.Sprintf("in %s: take the %s branch of (%s)", m.Name, branch, pn.CondText),
					})
				}
				cur = parent
			}
			for i := len(rev) - 1; i >= 0; i-- {
				steps = append(steps, rev[i])
			}
		case cfet.KCall:
			if int(el.Call) >= len(ic.CallEdges) {
				continue
			}
			ce := ic.CallEdges[el.Call]
			steps = append(steps, WitnessStep{
				Desc: fmt.Sprintf("call %s from %s", ic.Methods[ce.Callee].Name, ic.Methods[ce.Caller].Name),
			})
		case cfet.KRet:
			if int(el.Call) >= len(ic.CallEdges) {
				continue
			}
			ce := ic.CallEdges[el.Call]
			steps = append(steps, WitnessStep{
				Desc: fmt.Sprintf("return from %s to %s", ic.Methods[ce.Callee].Name, ic.Methods[ce.Caller].Name),
			})
		}
	}
	return steps
}

func checkTyped(en *engine.Engine, dg *pgraph.DataflowGraph, ic *cfet.ICFET, escaped map[int32]bool) ([]Report, error) {
	byEndpoint := map[[2]uint32]*pgraph.TrackedObj{}
	for i := range dg.Tracked {
		t := &dg.Tracked[i]
		byEndpoint[[2]uint32{t.Source, t.Exit}] = t
	}
	type repKey struct {
		site int32
		ctx  uint32
		fsm  string
		kind Kind
	}
	seen := map[repKey]bool{}
	var reports []Report
	err := en.ForEach(func(e *storage.Edge) bool {
		t, ok := byEndpoint[[2]uint32{e.Src, e.Dst}]
		if !ok {
			return true
		}
		states := e.Rel.Apply(t.FSM.Init)
		var bad []string
		kind := KindLeak
		for s := 0; s < len(t.FSM.States); s++ {
			if states&(1<<uint(s)) == 0 {
				continue
			}
			if s == fsm.ErrorState {
				kind = KindError
				bad = append(bad, t.FSM.States[s])
			} else if !t.FSM.IsAccept(s) {
				bad = append(bad, t.FSM.States[s])
			}
		}
		if len(bad) == 0 {
			return true
		}
		// A leak verdict says "still open when the program ends" — but an
		// object that escapes to an unseen caller doesn't end here, and the
		// release obligation went with it. Error states (a forbidden event
		// actually happened) stand regardless of ownership.
		if kind == KindLeak && escaped[t.Info.ID.Site] {
			return true
		}
		k := repKey{site: t.Info.ID.Site, ctx: t.Info.ID.Ctx, fsm: t.FSM.Name, kind: kind}
		if seen[k] {
			return true
		}
		seen[k] = true
		witnessConstraint := "true"
		if conj, derr := ic.Decode(e.Enc); derr == nil && len(conj) > 0 {
			witnessConstraint = conj.String(ic.Syms)
		}
		steps := explainWitness(ic, e.Enc)
		reports = append(reports, Report{
			FSM:               t.FSM.Name,
			Type:              t.Info.Type,
			Kind:              kind,
			Pos:               t.Info.Pos,
			Object:            t.Info.String(),
			States:            bad,
			Witness:           e.Enc.String(ic),
			WitnessConstraint: witnessConstraint,
			Steps:             steps,
		})
		return true
	})
	sortReports(reports)
	return reports, err
}

// sortReports orders warnings for output. The key is total over everything
// a report is identified by — line, column, FSM, kind, object and type —
// because the edge-iteration order feeding checkTyped is not specified: a
// tie left unbroken (two objects flagged on the same line, say) would let
// the report stream flip between runs, and batch mode promises byte-
// identical merged reports regardless of scheduling. SliceStable keeps any
// fully-identical reports in discovery order.
func sortReports(reports []Report) {
	sort.SliceStable(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.FSM != b.FSM {
			return a.FSM < b.FSM
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
}
